package sweep

// The differential harness: every sharded, checkpointed, killed-and-
// resumed execution of a sweep must render byte-identically to the
// serial single-goroutine oracle (RunSerial). This is the property that
// makes the distribution layer trustworthy — shard counts, worker
// counts, kill points and torn checkpoint tails must all be invisible in
// the merged table.

import (
	"os"
	"testing"
)

// shardCounts are the partitions every differential property is checked
// under (1 = trivially sharded, 2/7 = uneven, 32 = more shards than
// instances in some sweeps).
var shardCounts = []int{1, 2, 7, 32}

// diffSpecs are the sweeps the harness drives: the synthetic engine
// scenario across seeds plus small instances of every built-in scenario,
// so the real experiment families are certified too.
func diffSpecs(t *testing.T) []Spec {
	t.Helper()
	specs := []Spec{
		testSpec(40),
		{Scenario: "test-sum", Seed: 99, Count: 11, Size: 1},
		{Scenario: "enforce", Seed: 3, Count: 6, Size: 6, Params: map[string]float64{"spread": 4}},
		{Scenario: "pos-swap", Seed: 5, Count: 4, Size: 12, Params: map[string]float64{"starts": 2}},
	}
	if !testing.Short() {
		specs = append(specs, Spec{Scenario: "pos-trees", Seed: 7, Count: 4, Size: 4})
	}
	return specs
}

// TestShardMergeMatchesSerial: for every spec and shard count, a clean
// sharded run merges byte-identically to the serial oracle.
func TestShardMergeMatchesSerial(t *testing.T) {
	for _, spec := range diffSpecs(t) {
		want, err := RunSerial(spec)
		if err != nil {
			t.Fatalf("%s: serial: %v", spec.Scenario, err)
		}
		wantText := renderTable(t, want)
		for _, shards := range shardCounts {
			got, err := Run(spec, t.TempDir(), shards, Options{Workers: 3})
			if err != nil {
				t.Fatalf("%s shards=%d: %v", spec.Scenario, shards, err)
			}
			if gotText := renderTable(t, got); gotText != wantText {
				t.Errorf("%s shards=%d: merged table differs from serial:\n--- serial ---\n%s--- merged ---\n%s",
					spec.Scenario, shards, wantText, gotText)
			}
		}
	}
}

// TestKillResumeByteIdentical kills every shard mid-sweep (StopAfter
// truncates the run after a few records), corrupts one checkpoint with a
// torn tail the way an interrupted write would, resumes, and requires
// the merged output byte-identical to an uninterrupted serial run — for
// multiple shard counts and two kill points each.
func TestKillResumeByteIdentical(t *testing.T) {
	for _, spec := range diffSpecs(t) {
		want, err := RunSerial(spec)
		if err != nil {
			t.Fatalf("%s: serial: %v", spec.Scenario, err)
		}
		wantText := renderTable(t, want)
		for _, shards := range shardCounts {
			for _, killAfter := range []int{1, 3} {
				dir := t.TempDir()
				// Phase 1: the killed run. Every shard stops early; with
				// parallel workers the completed subset is scheduler-
				// dependent, which is exactly what resume must absorb.
				killed := 0
				for shard := 0; shard < shards; shard++ {
					n, err := RunShard(spec, dir, shard, shards, Options{Workers: 2, StopAfter: killAfter})
					if err != nil {
						t.Fatalf("%s shards=%d: killed run: %v", spec.Scenario, shards, err)
					}
					killed += n
				}
				if killed >= spec.Count && spec.Count > shards*killAfter {
					t.Fatalf("%s shards=%d: kill switch did not engage (%d records)", spec.Scenario, shards, killed)
				}
				// Tear the first shard's checkpoint tail: an interrupted
				// write leaves half a line.
				tearCheckpointTail(t, ShardPath(dir, 0, shards))
				// A merge of the incomplete run must refuse.
				if killed < spec.Count {
					if _, err := Merge(spec, dir, shards); err == nil {
						t.Fatalf("%s shards=%d: merge accepted an incomplete run", spec.Scenario, shards)
					}
				}
				// Phase 2: resume every shard to completion.
				resumed := 0
				for shard := 0; shard < shards; shard++ {
					n, err := RunShard(spec, dir, shard, shards, Options{Workers: 2})
					if err != nil {
						t.Fatalf("%s shards=%d: resume: %v", spec.Scenario, shards, err)
					}
					resumed += n
				}
				got, err := Merge(spec, dir, shards)
				if err != nil {
					t.Fatalf("%s shards=%d: merge after resume: %v", spec.Scenario, shards, err)
				}
				if gotText := renderTable(t, got); gotText != wantText {
					t.Errorf("%s shards=%d killAfter=%d: resumed table differs from serial:\n--- serial ---\n%s--- resumed ---\n%s",
						spec.Scenario, shards, killAfter, wantText, gotText)
				}
				// Nothing was both checkpointed and recomputed: the torn
				// record is the only one a resume may redo.
				if killed+resumed < spec.Count || killed+resumed > spec.Count+1 {
					t.Errorf("%s shards=%d killAfter=%d: killed %d + resumed %d ≠ count %d (+1 torn)",
						spec.Scenario, shards, killAfter, killed, resumed, spec.Count)
				}
			}
		}
	}
}

// tearCheckpointTail simulates a writer killed mid-write: the checkpoint
// loses the tail half of its final line.
func tearCheckpointTail(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		return // shard never got to write; that's a valid kill state too
	}
	end := len(data) - 1 // the final newline
	start := 0
	for i := end - 1; i >= 0; i-- {
		if data[i] == '\n' {
			start = i + 1
			break
		}
	}
	cut := start + (end-start)/2 // keep the head half of the final line, lose its newline
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSerialSweepMatchesLegacyLoop pins the scenario contract itself:
// the per-index rng derivation must make instance generation independent
// of execution order, so running indices in *reverse* through the
// scenario produces the identical record set.
func TestSerialSweepMatchesLegacyLoop(t *testing.T) {
	spec := testSpec(19)
	sc, _ := GetScenario(spec.Scenario)
	var forward, backward []Record
	for idx := 0; idx < spec.Count; idx++ {
		forward = append(forward, runOne(t, sc, spec, idx))
	}
	for idx := spec.Count - 1; idx >= 0; idx-- {
		backward = append(backward, runOne(t, sc, spec, idx))
	}
	for i, fr := range forward {
		br := backward[spec.Count-1-i]
		// The wall-time stamp is execution state, not instance content;
		// zero it so the byte comparison pins only the deterministic part.
		fr.WallNS, br.WallNS = 0, 0
		fl, _ := EncodeRecord(fr)
		bl, _ := EncodeRecord(br)
		if string(fl) != string(bl) {
			t.Fatalf("index %d depends on execution order:\n%s\n%s", fr.Index, fl, bl)
		}
	}
}

func runOne(t *testing.T, sc *Scenario, spec Spec, idx int) Record {
	t.Helper()
	rec, err := runOneIndex(sc, spec, idx)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}
