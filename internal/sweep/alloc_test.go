package sweep

import (
	"math/rand"
	"testing"

	"netdesign/internal/table"
)

// noopScenario is a scenario whose per-instance work is free, isolating
// the engine's own dispatch cost (seed derivation, shard routing, rng
// reuse, record plumbing) for the alloc regression tests and the
// BenchmarkSweepDispatch family.
func noopScenario() *Scenario {
	return &Scenario{
		Name:    "noop",
		TableID: "T0",
		Title:   "dispatch-overhead probe",
		Claim:   "none",
		Headers: []string{"-"},
		Run: func(spec Spec, idx int, rng *rand.Rand) (Record, error) {
			return Record{}, nil
		},
		Finalize: func(spec Spec, recs []Record, tb *table.Table) {},
	}
}

func init() { Register(noopScenario()) }

// TestDispatchPrimitivesAllocFree pins the per-instance routing
// primitives at zero allocations: they run once per instance per shard
// on every sweep, including resumes that skip millions of done indices.
func TestDispatchPrimitivesAllocFree(t *testing.T) {
	done := newDoneSet(4096)
	sink := int64(0)
	if avg := testing.AllocsPerRun(1000, func() {
		sink += InstanceSeed(42, 977)
		sink += int64(ShardOf(977, 7))
		if done.has(977) {
			sink++
		}
		done.add(977)
	}); avg != 0 {
		t.Errorf("dispatch primitives allocate %.1f/op, want 0", avg)
	}
	_ = sink
}

// TestDispatchAllocsPerInstance bounds the engine's whole per-instance
// dispatch path: running 256 no-op instances must cost a small constant
// number of allocations for the entire batch (worker setup), i.e. zero
// per instance — per-call allocations in the dispatch loop would show up
// 256-fold here.
func TestDispatchAllocsPerInstance(t *testing.T) {
	sc, ok := GetScenario("noop")
	if !ok {
		t.Fatal("noop scenario not registered")
	}
	spec := Spec{Scenario: "noop", Seed: 9, Count: 256}
	indices := make([]int, spec.Count)
	for i := range indices {
		indices[i] = i
	}
	sink := func(rec Record) error { return nil }
	avg := testing.AllocsPerRun(20, func() {
		if _, err := runIndices(sc, spec, indices, 1, 0, nil, sink); err != nil {
			t.Fatal(err)
		}
	})
	// Fixed setup (rng source + error slot bookkeeping) is allowed; one
	// alloc per instance would read ≥ 256 here.
	if avg > 16 {
		t.Errorf("serial dispatch of 256 instances allocates %.1f per batch — a per-instance allocation crept in", avg)
	}
}
