package sweep

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netdesign/internal/table"
)

// testScenario is a cheap deterministic scenario for engine tests: cells
// derived from the per-index rng, a note-only record every fifth index,
// and an aggregate-sum finalize note that exercises Vals round-tripping.
func testScenario() *Scenario {
	return &Scenario{
		Name:    "test-sum",
		TableID: "T1",
		Title:   "engine test scenario",
		Claim:   "none",
		Headers: []string{"idx", "draw", "double"},
		Run: func(spec Spec, idx int, rng *rand.Rand) (Record, error) {
			draw := rng.Float64()*spec.Param("scale", 10) + float64(spec.Size)
			if idx%5 == 4 {
				return Record{Notes: []string{fmt.Sprintf("idx %d skipped (draw %.4f)", idx, draw)}}, nil
			}
			return Record{
				Cells: table.FormatCells(idx, draw, 2*draw),
				Vals:  []float64{draw},
			}, nil
		},
		Finalize: func(spec Spec, recs []Record, tb *table.Table) {
			sum := 0.0
			for _, rec := range recs {
				for _, v := range rec.Vals {
					sum += v
				}
			}
			tb.Note("sum of draws: %.6f", sum)
		},
	}
}

func init() { Register(testScenario()) }

func testSpec(count int) Spec {
	return Spec{Scenario: "test-sum", Seed: 42, Count: count, Size: 3, Params: map[string]float64{"scale": 7.5}}
}

func renderTable(t *testing.T, tb *table.Table) string {
	t.Helper()
	var buf bytes.Buffer
	tb.Render(&buf)
	return buf.String()
}

func TestSpecRoundTrip(t *testing.T) {
	specs := []Spec{
		{Scenario: "pos-trees", Seed: 1, Count: 8, Size: 4},
		{Scenario: "x", Seed: -77, Count: 1, Size: 0, Params: map[string]float64{"a": 0.1, "zz": math.Inf(1), "mid": -3e-300}},
		testSpec(10),
	}
	for _, s := range specs {
		var buf bytes.Buffer
		if err := WriteSpec(&buf, s); err != nil {
			t.Fatalf("write %+v: %v", s, err)
		}
		back, err := ParseSpec(&buf)
		if err != nil {
			t.Fatalf("parse %+v: %v", s, err)
		}
		if !back.Equal(s) {
			t.Fatalf("round trip changed spec: %+v → %+v", s, back)
		}
	}
}

func TestSpecParseErrors(t *testing.T) {
	cases := []string{
		"",
		"sweep x\n",                     // missing count
		"count 3\n",                     // missing sweep
		"sweep x\ncount 0\n",            // bad count
		"sweep x\ncount 2\nsize -1\n",   // bad size
		"sweep x\ncount 2\nseed a\n",    // bad seed
		"sweep x\ncount 2\nparam p\n",   // short param
		"sweep x\ncount 2\nparam p q\n", // bad value
		"sweep x\ncount 2\nparam p 1\nparam p 2\n", // duplicate param
		"bogus 1\n", // unknown directive
	}
	for _, in := range cases {
		if _, err := ParseSpec(strings.NewReader(in)); err == nil {
			t.Errorf("ParseSpec accepted %q", in)
		}
	}
	// Comments, blank lines and repeated scalars are fine.
	s, err := ParseSpec(strings.NewReader("# hi\n\nsweep x\nseed 1\nseed 2\ncount 3\n"))
	if err != nil || s.Seed != 2 || s.Count != 3 {
		t.Fatalf("lenient parse failed: %+v, %v", s, err)
	}
}

func TestInstanceSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for _, seed := range []int64{0, 1, -9, 1 << 40} {
		for idx := 0; idx < 1000; idx++ {
			s := InstanceSeed(seed, idx)
			if seen[s] {
				t.Fatalf("seed collision at base %d idx %d", seed, idx)
			}
			seen[s] = true
		}
	}
	if InstanceSeed(7, 3) != InstanceSeed(7, 3) {
		t.Fatal("InstanceSeed not deterministic")
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	recs := []Record{
		{Index: 0},
		{Index: 3, Cells: []string{"a", "", "0.1250"}, Vals: []float64{0.1, math.Inf(1), math.Inf(-1), math.NaN(), -0.0}, Notes: []string{"n1", "n2"}},
		{Index: 1 << 30, Cells: []string{"x"}},
		{Index: 5, Cells: []string{"y"}, WallNS: 123456789},
	}
	for _, rec := range recs {
		line, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("encode %+v: %v", rec, err)
		}
		if bytes.IndexByte(line, '\n') >= 0 {
			t.Fatalf("encoded record contains newline: %s", line)
		}
		back, err := DecodeRecord(line)
		if err != nil {
			t.Fatalf("decode %s: %v", line, err)
		}
		if back.Index != rec.Index || len(back.Cells) != len(rec.Cells) ||
			len(back.Vals) != len(rec.Vals) || len(back.Notes) != len(rec.Notes) ||
			back.WallNS != rec.WallNS {
			t.Fatalf("round trip changed shape: %+v → %+v", rec, back)
		}
		for i := range rec.Cells {
			if back.Cells[i] != rec.Cells[i] {
				t.Fatalf("cell %d changed: %q → %q", i, rec.Cells[i], back.Cells[i])
			}
		}
		for i := range rec.Vals {
			if math.Float64bits(back.Vals[i]) != math.Float64bits(rec.Vals[i]) {
				t.Fatalf("val %d not bit-identical: %x → %x", i, rec.Vals[i], back.Vals[i])
			}
		}
	}
	if _, err := EncodeRecord(Record{Index: -1}); err == nil {
		t.Error("negative index encoded")
	}
	if _, err := EncodeRecord(Record{Index: 1, WallNS: -5}); err == nil {
		t.Error("negative wall time encoded")
	}
	for _, bad := range []string{"", "{", `{"i":-2}`, `{"i":1,"v":["zzz"]}`, `{"i":1,"bogus":2}`, `{"i":1} extra`, `{"i":1,"w":-9}`} {
		if _, err := DecodeRecord([]byte(bad)); err == nil {
			t.Errorf("DecodeRecord accepted %q", bad)
		}
	}
	// Backward compatibility: pre-wall-time lines (no "w" key) decode
	// with WallNS 0 and re-encode byte-identically (omitempty), so old
	// checkpoint files resume cleanly under the new codec.
	old := []byte(`{"i":9,"c":["r"],"v":["0x1p-01"]}`)
	back, err := DecodeRecord(old)
	if err != nil || back.WallNS != 0 {
		t.Fatalf("old-format line: %+v %v", back, err)
	}
	again, err := EncodeRecord(back)
	if err != nil || !bytes.Equal(again, old) {
		t.Fatalf("old-format line not a fixed point: %s vs %s (%v)", again, old, err)
	}
}

// TestRunShardCheckpointsWallTime: every checkpointed record of a real
// shard run must carry a positive wall-time stamp, and the merged table
// must be identical to a serial run regardless (merge ignores timing).
func TestRunShardCheckpointsWallTime(t *testing.T) {
	spec := Spec{Scenario: "enforce", Seed: 3, Count: 6, Size: 8}
	dir := t.TempDir()
	if _, err := RunShard(spec, dir, 0, 1, Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	recs, _, err := ReadCheckpointFile(ShardPath(dir, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != spec.Count {
		t.Fatalf("checkpointed %d records, want %d", len(recs), spec.Count)
	}
	for _, rec := range recs {
		if rec.WallNS <= 0 {
			t.Errorf("record %d has wall time %dns, want > 0", rec.Index, rec.WallNS)
		}
	}
}

func TestReadCheckpointTornTail(t *testing.T) {
	l0, _ := EncodeRecord(Record{Index: 0, Cells: []string{"a"}})
	l1, _ := EncodeRecord(Record{Index: 7, Cells: []string{"b"}})
	valid := string(l0) + "\n" + string(l1) + "\n"

	cases := []struct {
		data string
		want int // records recovered
	}{
		{valid, 2},
		{valid + `{"i":9,"c":["tor`, 2}, // unterminated torn line
		{valid + "garbage\n", 2},        // terminated garbage tail
		{valid + string(l0)[:4], 2},     // torn mid-record
		{"", 0},
		{`{"i":0`, 0}, // nothing but a torn line
	}
	for _, c := range cases {
		recs, n, err := readCheckpoint([]byte(c.data))
		if err != nil {
			t.Fatalf("readCheckpoint(%q): %v", c.data, err)
		}
		if len(recs) != c.want {
			t.Fatalf("readCheckpoint(%q): %d records, want %d", c.data, len(recs), c.want)
		}
		if want := len(valid); c.want == 2 && n != want {
			t.Fatalf("validLen %d, want %d", n, want)
		}
	}
	// Mid-file corruption is an error, not a torn tail.
	if _, _, err := readCheckpoint([]byte("junk\n" + valid)); err == nil {
		t.Error("mid-file corruption accepted")
	}
}

func TestShardPartition(t *testing.T) {
	count, shards := 103, 7
	seen := make([]bool, count)
	for s := 0; s < shards; s++ {
		for idx := s; idx < count; idx += shards {
			if ShardOf(idx, shards) != s {
				t.Fatalf("ShardOf(%d,%d) = %d, want %d", idx, shards, ShardOf(idx, shards), s)
			}
			if seen[idx] {
				t.Fatalf("index %d in two shards", idx)
			}
			seen[idx] = true
		}
	}
	for idx, ok := range seen {
		if !ok {
			t.Fatalf("index %d unassigned", idx)
		}
	}
}

func TestRunTableWorkerCountInvariant(t *testing.T) {
	spec := testSpec(23)
	want, err := RunSerial(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 5} {
		got, err := RunTable(spec, workers)
		if err != nil {
			t.Fatal(err)
		}
		if renderTable(t, got) != renderTable(t, want) {
			t.Fatalf("workers=%d output differs from serial", workers)
		}
	}
}

func TestRunShardRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(10)
	if _, err := RunShard(spec, dir, 3, 3, Options{}); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if _, err := RunShard(Spec{Scenario: "nope", Seed: 1, Count: 2}, dir, 0, 1, Options{}); err == nil {
		t.Error("unknown scenario accepted")
	}
	// A run dir pinned to a different spec refuses new shards.
	if _, err := RunShard(spec, dir, 0, 2, Options{}); err != nil {
		t.Fatal(err)
	}
	other := spec
	other.Seed++
	if _, err := RunShard(other, dir, 1, 2, Options{}); err == nil {
		t.Error("spec mismatch accepted")
	}
}

func TestRunShardResumeIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(17)
	n, err := RunShard(spec, dir, 0, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 { // indices 0,2,...,16
		t.Fatalf("first run wrote %d records, want 9", n)
	}
	n, err = RunShard(spec, dir, 0, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("re-run recomputed %d records, want 0", n)
	}
}

func TestMergeRejectsIncompleteRun(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(12)
	if _, err := RunShard(spec, dir, 0, 3, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(spec, dir, 3); err == nil {
		t.Error("merge of incomplete run succeeded")
	}
}

func TestCheckpointFilesAreJSONL(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(6)
	if _, err := RunShard(spec, dir, 0, 1, Options{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ShardPath(dir, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("%d JSONL lines for 6 instances", len(lines))
	}
	for _, ln := range lines {
		if _, err := DecodeRecord([]byte(ln)); err != nil {
			t.Fatalf("non-JSONL checkpoint line %q: %v", ln, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, specFileName)); err != nil {
		t.Fatalf("run dir has no pinned spec: %v", err)
	}
}

func TestMergeGuardsPinnedSpec(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(6)
	if _, err := Run(spec, dir, 1, Options{}); err != nil {
		t.Fatal(err)
	}
	// Intact pin, wrong spec: refused.
	other := spec
	other.Seed++
	if _, err := Merge(other, dir, 1); err == nil {
		t.Error("merge under a different spec accepted")
	}
	// Corrupt pin: refused rather than silently unguarded.
	if err := os.WriteFile(SpecPath(dir), []byte("not a spec\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(spec, dir, 1); err == nil {
		t.Error("merge with a corrupt pinned spec accepted")
	}
	// Missing pin (hand-assembled checkpoints): completeness check only.
	if err := os.Remove(SpecPath(dir)); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(spec, dir, 1); err != nil {
		t.Errorf("merge without a pinned spec failed: %v", err)
	}
}

// TestWriteRunSpecConcurrentClaim races two different specs onto fresh
// run dirs: the atomic pin must let exactly one through and reject the
// other, never silently installing both.
func TestWriteRunSpecConcurrentClaim(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		dir := t.TempDir()
		a, b := testSpec(5), testSpec(5)
		b.Seed++
		errA := make(chan error, 1)
		go func() { errA <- WriteRunSpec(dir, a) }()
		errB := WriteRunSpec(dir, b)
		eA := <-errA
		wins := 0
		if eA == nil {
			wins++
		}
		if errB == nil {
			wins++
		}
		if wins != 1 {
			t.Fatalf("trial %d: %d winners (a: %v, b: %v)", trial, wins, eA, errB)
		}
		// The pinned spec is whichever won, intact.
		pinned, err := LoadRunSpec(dir)
		if err != nil {
			t.Fatal(err)
		}
		if !pinned.Equal(a) && !pinned.Equal(b) {
			t.Fatalf("trial %d: pinned spec matches neither racer: %+v", trial, pinned)
		}
	}
}

// TestLayoutGuard: one run directory, one shard count — resharding a
// checkpointed dir must be refused, not silently recomputed in parallel.
func TestLayoutGuard(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(9)
	if _, err := RunShard(spec, dir, 0, 3, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunShard(spec, dir, 0, 2, Options{}); err == nil {
		t.Error("resharding 3→2 accepted")
	}
	if _, err := RunShard(spec, dir, 0, 1, Options{}); err == nil {
		t.Error("resharding 3→1 accepted")
	}
	if _, err := Merge(spec, dir, 1); err == nil {
		t.Error("merge under the wrong shard count accepted")
	}
	// Same layout continues fine.
	for shard := 0; shard < 3; shard++ {
		if _, err := RunShard(spec, dir, shard, 3, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Merge(spec, dir, 3); err != nil {
		t.Fatal(err)
	}
}
