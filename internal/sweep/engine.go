package sweep

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"netdesign/internal/parallel"
	"netdesign/internal/table"
)

// Options tunes one shard execution.
type Options struct {
	// Workers is the number of goroutines working the shard (≤ 0: one
	// per CPU). Records are checkpointed in completion order; merge
	// ordering never depends on it.
	Workers int

	// StopAfter, when > 0, stops the run after that many new records:
	// the bounded-budget knob, and the kill switch the resume
	// differential tests use to interrupt a shard mid-sweep.
	StopAfter int

	// SyncEvery controls checkpoint durability: the shard file is fsynced
	// after every SyncEvery appended records and on close, so records
	// acknowledged as done survive a host crash, not just a process kill.
	// 0 means DefaultSyncEvery (durability on); negative disables fsync
	// entirely (benchmark mode — a host crash may then lose acknowledged
	// records, which resume would silently recompute differently-ordered).
	SyncEvery int

	// Interrupt, when non-nil, is polled before each instance; returning
	// true stops the shard cleanly (no error — the partial checkpoint is a
	// valid crash state resume recovers from). Fabric workers park lease
	// loss here so a fenced worker stops computing instead of burning CPU
	// on records the coordinator will refuse.
	Interrupt func() bool
}

// ShardOf returns the shard owning instance idx under a round-robin
// partition into shards parts. Allocation-free.
func ShardOf(idx, shards int) int { return idx % shards }

// ShardPath returns the checkpoint path of one shard of a run directory.
func ShardPath(dir string, shard, shards int) string {
	return filepath.Join(dir, ShardName(shard, shards))
}

// specFileName pins the sweep spec inside its run directory so resumed
// and spawned workers can verify they are extending the same sweep.
const specFileName = "spec.sweep"

// SpecPath returns the run directory's pinned spec path.
func SpecPath(dir string) string { return filepath.Join(dir, specFileName) }

// WriteRunSpec pins spec under dir (creating it), or verifies the
// already-pinned spec matches — mixing sweeps in one directory is the
// classic way to corrupt a resumed run, so it is an error. The pin is
// claimed atomically (write a unique temp file, hard-link it into
// place), so concurrent first-time workers racing on a fresh directory
// cannot both install their spec: exactly one link wins and the loser
// falls through to the mismatch check.
func WriteRunSpec(dir string, spec Spec) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := SpecPath(dir)
	verify := func() error {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		pinned, perr := ParseSpec(f)
		f.Close()
		if perr != nil {
			return fmt.Errorf("sweep: unreadable pinned spec %s: %w", path, perr)
		}
		if !pinned.Equal(spec) {
			return fmt.Errorf("sweep: run dir %s holds a different sweep (pinned %+v)", dir, pinned)
		}
		return nil
	}
	if _, err := os.Stat(path); err == nil {
		return verify()
	}
	// CreateTemp gives every claimant — including same-process
	// goroutines — its own temp file; a shared name would let one racer
	// truncate another's in-flight write before the link.
	f, err := os.CreateTemp(dir, specFileName+".tmp.*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := WriteSpec(f, spec); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	linkErr := os.Link(tmp, path)
	os.Remove(tmp)
	if linkErr == nil {
		return nil
	}
	if os.IsExist(linkErr) {
		return verify() // lost the race; the winner's pin is complete
	}
	return linkErr
}

// checkLayout refuses to touch a run directory already checkpointed
// under a different shard count: the spec pin fixes the instance family
// but not the partition, and mixing partitions in one directory would
// silently recompute the sweep into a parallel checkpoint set.
func checkLayout(dir string, shards int) error {
	matches, err := filepath.Glob(filepath.Join(dir, "shard-*-of-*.jsonl"))
	if err != nil {
		return err
	}
	for _, match := range matches {
		base := filepath.Base(match)
		var s, total int
		if _, err := fmt.Sscanf(base, "shard-%d-of-%d.jsonl", &s, &total); err != nil {
			continue
		}
		if total != shards {
			return fmt.Errorf("sweep: run dir %s is already sharded %d-wise (found %s); rerun with shards=%d or use a fresh dir", dir, total, base, total)
		}
	}
	return nil
}

// LoadRunSpec reads the spec pinned under dir.
func LoadRunSpec(dir string) (Spec, error) {
	f, err := os.Open(SpecPath(dir))
	if err != nil {
		return Spec{}, err
	}
	defer f.Close()
	return ParseSpec(f)
}

// doneSet is a bitset over instance indices: allocation-free membership
// on the resume hot path.
type doneSet []uint64

func newDoneSet(n int) doneSet { return make(doneSet, (n+63)/64) }

func (d doneSet) has(i int) bool { return d[i>>6]&(1<<(uint(i)&63)) != 0 }

// add marks i and reports whether it was newly added.
func (d doneSet) add(i int) bool {
	if d.has(i) {
		return false
	}
	d[i>>6] |= 1 << (uint(i) & 63)
	return true
}

// runIndices executes the scenario on the given instance indices with up
// to workers goroutines, handing each completed record to sink (which
// must be safe for concurrent use). Each worker owns one reseeded rng
// source, so per-instance dispatch allocates nothing beyond what the
// scenario itself does. stopAfter > 0 caps the number of records
// produced; which indices complete under an early stop depends on worker
// scheduling (any subset is a valid crash state — resume recomputes the
// rest). Returns the number of records handed to sink.
func runIndices(sc *Scenario, spec Spec, indices []int, workers, stopAfter int, interrupt func() bool, sink func(Record) error) (int, error) {
	if len(indices) == 0 {
		return 0, nil
	}
	var reserved, produced atomic.Int64
	var stop atomic.Bool
	errs := make([]error, parallel.Workers(workers))
	parallel.ForEachChunk(len(indices), workers, func(k, lo, hi int) {
		rng := rand.New(rand.NewSource(1))
		// Per-worker carry for chained scenarios (basis homotopy): starts
		// nil each chunk, flows instance to instance within the chunk.
		var carry any
		for _, idx := range indices[lo:hi] {
			if stop.Load() {
				return
			}
			if interrupt != nil && interrupt() {
				stop.Store(true)
				return
			}
			if stopAfter > 0 && reserved.Add(1) > int64(stopAfter) {
				return
			}
			// Seed through the Rand, not the Source: Rand.Seed also
			// resets the buffered Read state, so a scenario calling
			// rng.Read cannot leak bytes across instances and break the
			// order-independence contract.
			rng.Seed(InstanceSeed(spec.Seed, idx))
			t0 := time.Now()
			rec, next, err := sc.runInstance(spec, idx, rng, carry)
			carry = next
			if err != nil {
				errs[k] = fmt.Errorf("sweep: %s[%d]: %w", spec.Scenario, idx, err)
				stop.Store(true)
				return
			}
			rec.Index = idx
			// Wall-time stamp for adaptive shard balancing; merge and
			// table assembly ignore it, so determinism is untouched.
			rec.WallNS = time.Since(t0).Nanoseconds()
			if err := sink(rec); err != nil {
				errs[k] = err
				stop.Store(true)
				return
			}
			produced.Add(1)
		}
	})
	for _, err := range errs {
		if err != nil {
			return int(produced.Load()), err
		}
	}
	return int(produced.Load()), nil
}

// runOneIndex computes a single instance exactly as the workers do: a
// fresh rng seeded with InstanceSeed, index stamped on the record.
func runOneIndex(sc *Scenario, spec Spec, idx int) (Record, error) {
	t0 := time.Now()
	rec, _, err := sc.runInstance(spec, idx, rand.New(rand.NewSource(InstanceSeed(spec.Seed, idx))), nil)
	if err != nil {
		return Record{}, err
	}
	rec.Index = idx
	rec.WallNS = time.Since(t0).Nanoseconds()
	return rec, nil
}

// RunTable runs the whole family in process — no checkpoints — and
// assembles the scenario's table. The result is independent of the
// worker count: records are reassembled in index order.
func RunTable(spec Spec, workers int) (*table.Table, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sc, ok := GetScenario(spec.Scenario)
	if !ok {
		return nil, fmt.Errorf("sweep: unknown scenario %q", spec.Scenario)
	}
	indices := make([]int, spec.Count)
	for i := range indices {
		indices[i] = i
	}
	recs := make([]Record, 0, spec.Count)
	var mu sync.Mutex
	_, err := runIndices(sc, spec, indices, workers, 0, nil, func(rec Record) error {
		mu.Lock()
		recs = append(recs, rec)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return BuildTable(spec, recs)
}

// RunSerial is the single-worker oracle path: every instance in index
// order on one goroutine, no sharding, no files. The differential tests
// hold every shard/resume execution to byte-identical output against it.
func RunSerial(spec Spec) (*table.Table, error) { return RunTable(spec, 1) }

// RunShard executes one shard of the sweep under dir, resuming from its
// checkpoint: indices already on disk are skipped, a torn final line from
// a killed writer is truncated and recomputed, and every newly completed
// instance is appended as one JSONL line. Returns the number of new
// records written. Safe to re-run after any interruption; concurrent
// writers on the *same* shard are not supported (give each worker its
// own shard).
func RunShard(spec Spec, dir string, shard, shards int, opt Options) (int, error) {
	return RunShardOn(NewDirBackend(dir), spec, shard, shards, opt)
}

// RunShardOn is RunShard over any checkpoint Backend: the canonical
// shard checkpoint (ShardName) is read, torn-tail-truncated, and extended
// with every newly completed instance.
func RunShardOn(b Backend, spec Spec, shard, shards int, opt Options) (int, error) {
	if shards < 1 || shard < 0 || shard >= shards {
		return 0, fmt.Errorf("sweep: shard %d/%d out of range", shard, shards)
	}
	return RunShardFileOn(b, spec, ShardName(shard, shards), shard, shards, opt)
}

// RunShardFileOn runs shard shard/shards of the sweep against the named
// checkpoint instead of the canonical one — the hook speculative
// re-execution rides on: a second attempt at a straggling shard computes
// the same index set into its own staging checkpoint, so the primary's
// writer is never shared. Resume semantics are per name: indices already
// present in that checkpoint are skipped.
func RunShardFileOn(b Backend, spec Spec, name string, shard, shards int, opt Options) (int, error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	sc, ok := GetScenario(spec.Scenario)
	if !ok {
		return 0, fmt.Errorf("sweep: unknown scenario %q", spec.Scenario)
	}
	if shards < 1 || shard < 0 || shard >= shards {
		return 0, fmt.Errorf("sweep: shard %d/%d out of range", shard, shards)
	}
	if err := b.PinSpec(spec); err != nil {
		return 0, err
	}
	if err := b.CheckLayout(shards); err != nil {
		return 0, err
	}
	recs, validLen, err := b.ReadShard(name)
	if err != nil {
		return 0, err
	}
	done := newDoneSet(spec.Count)
	for _, rec := range recs {
		if rec.Index >= spec.Count || ShardOf(rec.Index, shards) != shard {
			return 0, fmt.Errorf("sweep: checkpoint %s holds foreign index %d", name, rec.Index)
		}
		if !done.add(rec.Index) {
			return 0, fmt.Errorf("sweep: checkpoint %s duplicates index %d", name, rec.Index)
		}
	}
	var remaining []int
	for idx := shard; idx < spec.Count; idx += shards {
		if !done.has(idx) {
			remaining = append(remaining, idx)
		}
	}
	if len(remaining) == 0 {
		return 0, nil
	}
	w, err := b.OpenShard(name, validLen, resolveSyncEvery(opt.SyncEvery))
	if err != nil {
		return 0, err
	}
	n, runErr := runIndices(sc, spec, remaining, opt.Workers, opt.StopAfter, opt.Interrupt, w.Append)
	if cerr := w.Close(); runErr == nil {
		runErr = cerr
	}
	return n, runErr
}

// Merge reassembles the table from all shard checkpoints of a completed
// run. It verifies the records form exactly one record per index — a
// killed, resumed, resharded-nowhere run merges bit-identically to
// RunSerial or it errors.
func Merge(spec Spec, dir string, shards int) (*table.Table, error) {
	return MergeOn(NewDirBackend(dir), spec, shards)
}

// MergeOn is Merge over any checkpoint Backend.
func MergeOn(b Backend, spec Spec, shards int) (*table.Table, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	pinned, err := b.LoadSpec()
	switch {
	case errors.Is(err, os.ErrNotExist):
		// No pin (checkpoints assembled by hand); BuildTable's
		// completeness check is the only guard left.
	case err != nil:
		return nil, fmt.Errorf("sweep: unreadable pinned spec: %w", err)
	case !pinned.Equal(spec):
		return nil, fmt.Errorf("sweep: checkpoint store holds a different sweep")
	}
	if err := b.CheckLayout(shards); err != nil {
		return nil, err
	}
	var recs []Record
	for shard := 0; shard < shards; shard++ {
		rs, _, err := b.ReadShard(ShardName(shard, shards))
		if err != nil {
			return nil, err
		}
		recs = append(recs, rs...)
	}
	return BuildTable(spec, recs)
}

// Run executes every shard in process (each with opt.Workers goroutines)
// and merges: the one-command local path cmd/sweep defaults to.
func Run(spec Spec, dir string, shards int, opt Options) (*table.Table, error) {
	if shards < 1 {
		return nil, fmt.Errorf("sweep: shards %d < 1", shards)
	}
	for shard := 0; shard < shards; shard++ {
		if _, err := RunShard(spec, dir, shard, shards, opt); err != nil {
			return nil, err
		}
	}
	return Merge(spec, dir, shards)
}
