package sweep

import (
	"fmt"
	"os"
	"path/filepath"
)

// ShardWriter appends completed records to one shard checkpoint, one
// fully formed JSONL line per record, durably within the writer's sync
// window. Append must be safe for concurrent use (the engine's worker
// goroutines share one writer); Close flushes and releases the
// checkpoint.
type ShardWriter interface {
	Append(Record) error
	Close() error
}

// Backend is the pluggable checkpoint store behind a sweep run: the
// local run directory today (DirBackend), the coordinator-served HTTP
// store in internal/fabric tomorrow — both honoring the same contract:
//
//   - PinSpec is write-or-verify: the first pin installs the spec, every
//     later pin of a different spec errors (mixing sweeps in one store is
//     how resumed runs get corrupted).
//   - ReadShard returns the records of the named checkpoint plus the byte
//     length of its decodable prefix; a torn final line from a killed
//     writer is dropped (its length excluded), a missing checkpoint reads
//     as empty, and corruption before the final line errors.
//   - OpenShard opens the named checkpoint for appending after truncating
//     it to validLen (the resume point ReadShard reported); syncEvery is
//     the durability window in records (see Options.SyncEvery; pass the
//     already-resolved value).
//
// The contract is pinned by the shared suite in
// internal/sweep/backendtest, which every implementation must pass.
type Backend interface {
	PinSpec(Spec) error
	LoadSpec() (Spec, error)
	CheckLayout(shards int) error
	ReadShard(name string) ([]Record, int64, error)
	OpenShard(name string, validLen int64, syncEvery int) (ShardWriter, error)
}

// ShardName is the canonical checkpoint name of one shard of an m-way
// run. Backends key checkpoints by these names; DirBackend maps them to
// files under its run directory.
func ShardName(shard, shards int) string {
	return fmt.Sprintf("shard-%03d-of-%03d.jsonl", shard, shards)
}

// DecodeCheckpoint parses an append-only checkpoint buffer, tolerating a
// torn final line (dropped; its bytes excluded from validLen). This is
// the client half of the Backend contract: remote backends ship raw
// checkpoint bytes and the reader recovers locally, exactly as
// ReadCheckpointFile does for local files.
func DecodeCheckpoint(data []byte) (recs []Record, validLen int64, err error) {
	rs, n, err := readCheckpoint(data)
	return rs, int64(n), err
}

// DirBackend is the local-directory checkpoint store: one file per
// checkpoint name under Dir, the spec pinned as spec.sweep. It is the
// storage layer cmd/sweep has always used, now behind the Backend
// interface so the engine cannot tell it from a remote store.
type DirBackend struct{ Dir string }

// NewDirBackend returns the Backend rooted at dir.
func NewDirBackend(dir string) DirBackend { return DirBackend{Dir: dir} }

func (b DirBackend) PinSpec(spec Spec) error     { return WriteRunSpec(b.Dir, spec) }
func (b DirBackend) LoadSpec() (Spec, error)     { return LoadRunSpec(b.Dir) }
func (b DirBackend) CheckLayout(shards int) error { return checkLayout(b.Dir, shards) }

func (b DirBackend) ReadShard(name string) ([]Record, int64, error) {
	return ReadCheckpointFile(filepath.Join(b.Dir, name))
}

func (b DirBackend) OpenShard(name string, validLen int64, syncEvery int) (ShardWriter, error) {
	return openCheckpoint(filepath.Join(b.Dir, name), validLen, syncEvery)
}

// Promote atomically renames checkpoint src over dst — the coordinator
// uses it to install a winning speculative attempt as the canonical
// shard checkpoint.
func (b DirBackend) Promote(src, dst string) error {
	return os.Rename(filepath.Join(b.Dir, src), filepath.Join(b.Dir, dst))
}

// Remove deletes a checkpoint; a missing one is not an error (losing
// attempts may already have been promoted away).
func (b DirBackend) Remove(name string) error {
	err := os.Remove(filepath.Join(b.Dir, name))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
