package sweep

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestCheckpointWriterSyncWindow drives the writer record by record and
// asserts the durability invariant the kill/resume harness (process kill
// only — the page cache survives) cannot see: at every acknowledgement,
// the bytes NOT yet covered by an fsync amount to fewer than one sync
// window of records. A host crash may therefore lose at most the last
// window minus one — never an arbitrary acknowledged prefix, which is
// what the pre-fix writer (no fsync at all) risked.
func TestCheckpointWriterSyncWindow(t *testing.T) {
	for _, window := range []int{1, 4} {
		var mu sync.Mutex
		var synced int64
		CheckpointSyncHook = func(off int64) {
			mu.Lock()
			synced = off
			mu.Unlock()
		}
		t.Cleanup(func() { CheckpointSyncHook = nil })

		path := filepath.Join(t.TempDir(), "shard.jsonl")
		w, err := openCheckpoint(path, 0, window)
		if err != nil {
			t.Fatal(err)
		}
		written := int64(0)
		for i := 0; i < 10; i++ {
			rec := Record{Index: i, Cells: []string{"x"}, Vals: []float64{float64(i)}}
			line, err := EncodeRecord(rec)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Append(rec); err != nil {
				t.Fatal(err)
			}
			written += int64(len(line)) + 1
			mu.Lock()
			lag := written - synced
			mu.Unlock()
			// The acknowledged-but-unsynced span must stay under one
			// window of records (each line here is < 64 bytes).
			if maxLag := int64(window) * 64; lag >= maxLag {
				t.Fatalf("window %d: after ack %d, %d bytes unsynced (>= %d)", window, i, lag, maxLag)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		finalSynced := synced
		mu.Unlock()
		if finalSynced != written {
			t.Fatalf("window %d: close left %d of %d bytes unsynced", window, finalSynced, written)
		}
	}
}

// TestCheckpointWriterSyncDisabled: a negative Options.SyncEvery resolves
// to a writer that never fsyncs — the explicit benchmark escape hatch.
func TestCheckpointWriterSyncDisabled(t *testing.T) {
	calls := 0
	CheckpointSyncHook = func(int64) { calls++ }
	t.Cleanup(func() { CheckpointSyncHook = nil })

	path := filepath.Join(t.TempDir(), "shard.jsonl")
	w, err := openCheckpoint(path, 0, resolveSyncEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append(Record{Index: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("disabled writer fsynced %d times", calls)
	}
}

func TestResolveSyncEvery(t *testing.T) {
	if got := resolveSyncEvery(0); got != DefaultSyncEvery {
		t.Errorf("resolveSyncEvery(0) = %d, want default %d", got, DefaultSyncEvery)
	}
	if got := resolveSyncEvery(-3); got != 0 {
		t.Errorf("resolveSyncEvery(-3) = %d, want 0 (disabled)", got)
	}
	if got := resolveSyncEvery(7); got != 7 {
		t.Errorf("resolveSyncEvery(7) = %d, want 7", got)
	}
}

// TestRunShardSyncPoints runs a real shard end to end with a one-record
// sync window and asserts (a) every record was covered by an fsync before
// the run finished, and (b) the synced prefix always decodes to complete
// records — i.e. what the coordinator could read back after a host crash
// at any sync point is a valid checkpoint of acknowledged work.
func TestRunShardSyncPoints(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Scenario: "enforce", Seed: 3, Count: 6, Size: 8}

	var mu sync.Mutex
	var offsets []int64
	CheckpointSyncHook = func(off int64) {
		mu.Lock()
		offsets = append(offsets, off)
		mu.Unlock()
	}
	t.Cleanup(func() { CheckpointSyncHook = nil })

	n, err := RunShard(spec, dir, 0, 1, Options{Workers: 1, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n != spec.Count {
		t.Fatalf("produced %d records, want %d", n, spec.Count)
	}
	if len(offsets) < spec.Count {
		t.Fatalf("only %d fsyncs for %d acknowledged records", len(offsets), spec.Count)
	}
	data, err := os.ReadFile(ShardPath(dir, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if last := offsets[len(offsets)-1]; last != int64(len(data)) {
		t.Fatalf("final sync covered %d of %d bytes", last, len(data))
	}
	// Every sync point must be a clean record boundary: decoding the
	// synced prefix may drop nothing (no torn tail at a sync point).
	for _, off := range offsets {
		recs, validLen, err := readCheckpoint(data[:off])
		if err != nil {
			t.Fatalf("synced prefix [0:%d) corrupt: %v", off, err)
		}
		if validLen != int(off) {
			t.Fatalf("sync point %d is not a record boundary (valid prefix %d)", off, validLen)
		}
		_ = recs
	}
}
