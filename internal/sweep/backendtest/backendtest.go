// Package backendtest is the shared contract suite for sweep checkpoint
// backends: every Backend implementation — the local run directory, the
// coordinator-served HTTP store — must pass the identical battery of
// spec-pin, append-only, torn-tail-recovery, durability-window and
// engine-integration assertions. The suite is what makes "pluggable"
// trustworthy: the engine's crash-safety argument is written once against
// the contract, and each backend proves it honors it.
package backendtest

import (
	"bytes"
	"errors"
	"os"
	"sync"
	"testing"

	"netdesign/internal/sweep"
)

// Env is one backend under test. Tamper rewrites the raw bytes of a
// named checkpoint behind the Backend's back — how the suite plants the
// torn tails and corruption a crashed writer leaves. For remote
// backends, Tamper operates on the server-side store.
type Env struct {
	Backend sweep.Backend
	Tamper  func(t *testing.T, name string, mutate func([]byte) []byte)
}

// Run drives the full contract suite, building a fresh Env per subtest.
func Run(t *testing.T, open func(t *testing.T) Env) {
	t.Run("SpecPin", func(t *testing.T) { testSpecPin(t, open(t)) })
	t.Run("AppendRead", func(t *testing.T) { testAppendRead(t, open(t)) })
	t.Run("TornTailRecovery", func(t *testing.T) { testTornTail(t, open(t)) })
	t.Run("CorruptionErrors", func(t *testing.T) { testCorruption(t, open(t)) })
	t.Run("SyncWindow", func(t *testing.T) { testSyncWindow(t, open(t)) })
	t.Run("LayoutGuard", func(t *testing.T) { testLayoutGuard(t, open(t)) })
	t.Run("EngineDifferential", func(t *testing.T) { testEngineDifferential(t, open(t)) })
}

func contractSpec() sweep.Spec {
	return sweep.Spec{Scenario: "enforce", Seed: 17, Count: 6, Size: 5, Params: map[string]float64{"spread": 3}}
}

func rec(i int, v float64) sweep.Record {
	return sweep.Record{Index: i, Cells: []string{"a", "b", "c", "d", "e"}, Vals: []float64{v}}
}

// encode renders a record the way the checkpoint file stores it.
func encode(t *testing.T, r sweep.Record) []byte {
	t.Helper()
	line, err := sweep.EncodeRecord(r)
	if err != nil {
		t.Fatal(err)
	}
	return line
}

func testSpecPin(t *testing.T, env Env) {
	b := env.Backend
	if _, err := b.LoadSpec(); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("LoadSpec on empty store: got %v, want ErrNotExist", err)
	}
	spec := contractSpec()
	if err := b.PinSpec(spec); err != nil {
		t.Fatalf("first pin: %v", err)
	}
	got, err := b.LoadSpec()
	if err != nil {
		t.Fatalf("LoadSpec after pin: %v", err)
	}
	if !got.Equal(spec) {
		t.Fatalf("pinned spec round-trip: got %+v, want %+v", got, spec)
	}
	if err := b.PinSpec(spec); err != nil {
		t.Fatalf("idempotent re-pin: %v", err)
	}
	other := spec
	other.Seed++
	if err := b.PinSpec(other); err == nil {
		t.Fatal("pin of a different spec accepted — mixing sweeps must error")
	}
}

func testAppendRead(t *testing.T, env Env) {
	b := env.Backend
	name := sweep.ShardName(0, 2)
	// A checkpoint never written reads as empty, not as an error.
	recs, validLen, err := b.ReadShard(name)
	if err != nil || len(recs) != 0 || validLen != 0 {
		t.Fatalf("missing checkpoint: recs=%d len=%d err=%v, want empty", len(recs), validLen, err)
	}
	w, err := b.OpenShard(name, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want []sweep.Record
	wantLen := int64(0)
	for i := 0; i < 3; i++ {
		r := rec(2*i, float64(i)+0.5)
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
		wantLen += int64(len(encode(t, r))) + 1
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, validLen, err = b.ReadShard(name)
	if err != nil {
		t.Fatal(err)
	}
	if validLen != wantLen {
		t.Fatalf("validLen %d, want %d", validLen, wantLen)
	}
	requireSameRecords(t, recs, want)
	// Append-only: reopening at validLen extends, never rewrites.
	w, err = b.OpenShard(name, validLen, 0)
	if err != nil {
		t.Fatal(err)
	}
	extra := rec(8, 9.25)
	if err := w.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err = b.ReadShard(name)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRecords(t, recs, append(want, extra))
}

func testTornTail(t *testing.T, env Env) {
	b := env.Backend
	name := sweep.ShardName(1, 2)
	w, err := b.OpenShard(name, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want []sweep.Record
	for i := 0; i < 3; i++ {
		r := rec(2*i+1, float64(i)*3.5)
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// A writer killed mid-write leaves the head half of its final line.
	env.Tamper(t, name, func(data []byte) []byte {
		start := bytes.LastIndexByte(data[:len(data)-1], '\n') + 1
		return data[:start+(len(data)-1-start)/2]
	})
	recs, validLen, err := b.ReadShard(name)
	if err != nil {
		t.Fatalf("torn tail must recover, got %v", err)
	}
	requireSameRecords(t, recs, want[:2])
	// Resume: truncate at the valid prefix and recompute the lost record.
	w, err = b.OpenShard(name, validLen, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(want[2]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err = b.ReadShard(name)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRecords(t, recs, want)
}

func testCorruption(t *testing.T, env Env) {
	b := env.Backend
	name := sweep.ShardName(0, 3)
	w, err := b.OpenShard(name, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(rec(3*i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Garbage before the final line is corruption, not a torn tail.
	env.Tamper(t, name, func(data []byte) []byte {
		first := bytes.IndexByte(data, '\n')
		mangled := append([]byte(nil), data...)
		copy(mangled[first/2:], "@@@@")
		return mangled
	})
	if _, _, err := b.ReadShard(name); err == nil {
		t.Fatal("mid-file corruption read back as valid")
	}
}

func testSyncWindow(t *testing.T, env Env) {
	b := env.Backend
	name := sweep.ShardName(0, 1)
	var mu sync.Mutex
	var synced int64
	syncs := 0
	sweep.CheckpointSyncHook = func(off int64) {
		mu.Lock()
		synced, syncs = off, syncs+1
		mu.Unlock()
	}
	t.Cleanup(func() { sweep.CheckpointSyncHook = nil })

	const window = 2
	w, err := b.OpenShard(name, 0, window)
	if err != nil {
		t.Fatal(err)
	}
	written := int64(0)
	for i := 0; i < 7; i++ {
		r := rec(i, float64(i))
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
		written += int64(len(encode(t, r))) + 1
		mu.Lock()
		lag := written - synced
		mu.Unlock()
		// At every acknowledgement, at most one window of records may
		// still be outside an fsync (each line here is < 96 bytes).
		if maxLag := int64(window) * 96; lag >= maxLag {
			t.Fatalf("after ack %d, %d bytes unsynced (>= %d)", i, lag, maxLag)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	finalSynced, n := synced, syncs
	mu.Unlock()
	if finalSynced != written {
		t.Fatalf("close left %d of %d bytes unsynced", finalSynced, written)
	}
	if n < 7/window {
		t.Fatalf("only %d fsyncs for 7 records at window %d", n, window)
	}
}

func testLayoutGuard(t *testing.T, env Env) {
	b := env.Backend
	if err := b.CheckLayout(4); err != nil {
		t.Fatalf("layout check on empty store: %v", err)
	}
	w, err := b.OpenShard(sweep.ShardName(1, 4), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(rec(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.CheckLayout(4); err != nil {
		t.Fatalf("matching layout rejected: %v", err)
	}
	if err := b.CheckLayout(3); err == nil {
		t.Fatal("mixed shard counts accepted — partitions must not mix in one store")
	}
}

// testEngineDifferential runs a real sharded sweep end to end through
// the backend — including a mid-shard kill and resume — and holds the
// merged table byte-identical to the serial oracle.
func testEngineDifferential(t *testing.T, env Env) {
	b := env.Backend
	spec := contractSpec()
	want, err := sweep.RunSerial(spec)
	if err != nil {
		t.Fatal(err)
	}
	var wantText, gotText bytes.Buffer
	want.Render(&wantText)
	const shards = 2
	for shard := 0; shard < shards; shard++ {
		// Kill after one record, then resume to completion.
		if _, err := sweep.RunShardOn(b, spec, shard, shards, sweep.Options{Workers: 1, StopAfter: 1}); err != nil {
			t.Fatalf("killed run shard %d: %v", shard, err)
		}
		if _, err := sweep.RunShardOn(b, spec, shard, shards, sweep.Options{Workers: 1}); err != nil {
			t.Fatalf("resume shard %d: %v", shard, err)
		}
	}
	got, err := sweep.MergeOn(b, spec, shards)
	if err != nil {
		t.Fatal(err)
	}
	got.Render(&gotText)
	if gotText.String() != wantText.String() {
		t.Fatalf("merged table differs from serial oracle:\n--- serial ---\n%s--- merged ---\n%s", wantText.String(), gotText.String())
	}
}

func requireSameRecords(t *testing.T, got, want []sweep.Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d records, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := encode(t, got[i]), encode(t, want[i])
		if !bytes.Equal(g, w) {
			t.Fatalf("record %d differs:\n got %s\nwant %s", i, g, w)
		}
	}
}
