package sweep

import (
	"fmt"
	"math"
	"math/rand"

	"netdesign/internal/broadcast"
	"netdesign/internal/graph"
	"netdesign/internal/numeric"
	"netdesign/internal/sne"
	"netdesign/internal/subsidy"
	"netdesign/internal/table"
)

// sneLPBaseSeed decorrelates the jitter-family base graph from the
// per-instance streams (which use InstanceSeed of the same spec seed).
const sneLPBaseSeed = 0x5eed_ba5e_c0de

// The built-in scenarios: the paper's heavy experiment families, rebased
// from internal/experiments onto the sharded engine. TableIDs match the
// experiments registry (E9/E20/E21) so merged sweep output slots into the
// same report the serial registry run emits.

func init() {
	Register(posTreesScenario())
	Register(posSwapScenario())
	Register(enforceScenario())
	Register(sneLPScenario())
}

// posTreesScenario is the exhaustive PoS landscape study (experiment E9):
// random broadcast games small enough for full spanning-tree enumeration,
// measured against the Anshelevich H_n bound and the
// Mamageishvili–Mihalák–Montemezzani H_{n/2}-style refinement.
//
// Params: spread (default 4) — n is uniform in [Size, Size+spread);
// treelimit (default 20000) — enumeration cap before the instance is
// skipped with a note.
func posTreesScenario() *Scenario {
	return &Scenario{
		Name:    "pos-trees",
		TableID: "E9",
		Title:   "Exact PoS of random broadcast games (tree enumeration)",
		Claim:   "Context (§1): PoS ≤ H_n in general; best known broadcast bounds are [1.818, O(log log n)]",
		Headers: []string{"n", "trees", "equilibria", "OPT", "best eq", "PoS", "H_n bound", "H_n/2", "within"},
		Run: func(spec Spec, idx int, rng *rand.Rand) (Record, error) {
			spread := int(spec.Param("spread", 4))
			if spread < 1 {
				spread = 1
			}
			n := spec.Size + rng.Intn(spread)
			g := graph.RandomConnected(rng, n, 0.45, 0.3, 2)
			bg, err := broadcast.NewGame(g, 0)
			if err != nil {
				return Record{}, err
			}
			a, err := broadcast.AnalyzeTrees(bg, nil, int(spec.Param("treelimit", 20000)))
			if err == graph.ErrTooManyTrees {
				return Record{Notes: []string{fmt.Sprintf("n=%d: skipped (spanning-tree enumeration over limit)", n)}}, nil
			}
			if err != nil {
				return Record{}, err
			}
			if a.Equilibria == 0 {
				// Possible over tree states only when the best equilibria
				// use non-tree states with zero-weight cycles; none here
				// (weights are positive), so flag it.
				return Record{Notes: []string{fmt.Sprintf("n=%d: no spanning-tree equilibrium found (unexpected for positive weights)", n)}}, nil
			}
			players := int(bg.NumPlayers())
			hn := numeric.Harmonic(players)
			hn2 := numeric.Harmonic((players + 1) / 2)
			pos := a.PoS()
			return Record{
				Cells: table.FormatCells(n, a.Trees, a.Equilibria, a.OptWeight, a.BestEq, pos, hn, hn2, pos <= hn+numeric.Eps),
				Vals:  []float64{pos},
			}, nil
		},
		Finalize: func(spec Spec, recs []Record, tb *table.Table) {
			maxPoS := 1.0
			for _, rec := range recs {
				if len(rec.Vals) > 0 && rec.Vals[0] > maxPoS {
					maxPoS = rec.Vals[0]
				}
			}
			tb.Note("maximum PoS observed: %.4f (paper's broadcast lower bound: 1.818)", maxPoS)
		},
	}
}

// posSwapScenario is the large-n PoS estimator (experiment E20): n far
// beyond exhaustive enumeration, bounded above by multi-start
// swap-descent local search (broadcast.EstimatePoS on SwapDynamics +
// SwapPotentialDelta).
//
// Params: spread (default 8) — n uniform in [Size, Size+spread); p
// (default 0.15) — extra-edge density; starts (default 4) — descents per
// instance; maxsteps (default 0 → engine default) — swap budget.
func posSwapScenario() *Scenario {
	return &Scenario{
		Name:    "pos-swap",
		TableID: "E20",
		Title:   "Large-n PoS upper bounds via swap-descent local search",
		Claim:   "Beyond enumeration, every converged swap descent certifies PoS ≤ weight/OPT (far below H_n)",
		Headers: []string{"n", "edges", "starts", "converged", "swaps", "OPT", "best eq", "PoS ≤", "H_n bound"},
		Run: func(spec Spec, idx int, rng *rand.Rand) (Record, error) {
			spread := int(spec.Param("spread", 8))
			if spread < 1 {
				spread = 1
			}
			n := spec.Size + rng.Intn(spread)
			g := graph.RandomConnected(rng, n, spec.Param("p", 0.15), 0.5, 3)
			bg, err := broadcast.NewGame(g, 0)
			if err != nil {
				return Record{}, err
			}
			est, err := broadcast.EstimatePoS(bg, nil, int(spec.Param("starts", 4)), int(spec.Param("maxsteps", 0)), rng)
			if err != nil {
				return Record{}, err
			}
			hn := numeric.Harmonic(int(bg.NumPlayers()))
			bestEq, pos := "—", "—"
			var vals []float64
			if est.Converged > 0 {
				bestEq = fmt.Sprintf("%.4f", est.BestEq)
				pos = fmt.Sprintf("%.4f", est.PoS())
				vals = []float64{est.PoS()}
			}
			return Record{
				Cells: table.FormatCells(n, g.M(), est.Starts, est.Converged, est.Steps, est.OptWeight, bestEq, pos, hn),
				Vals:  vals,
			}, nil
		},
		Finalize: func(spec Spec, recs []Record, tb *table.Table) {
			maxPoS, converged := 0.0, 0
			for _, rec := range recs {
				if len(rec.Vals) > 0 {
					converged++
					if rec.Vals[0] > maxPoS {
						maxPoS = rec.Vals[0]
					}
				}
			}
			if converged > 0 {
				tb.Note("maximum certified PoS upper bound: %.4f over %d/%d converged instances", maxPoS, converged, len(recs))
			} else {
				tb.Note("no descent converged to an equilibrium — raise starts or maxsteps")
			}
		},
	}
}

// sneLPScenario is the optimal-enforcement sweep (experiment E22): the
// Theorem-1 LP (3) optimum on random MST states at sweep scale, through
// the sparse revised simplex. Against Theorem 6's universal 1/e budget
// the LP reports how much an *optimal* designer actually pays per
// instance — the data generator for learning enforcement budgets across
// a family (the Balcan–Pozzi–Sharma direction in PAPERS.md).
//
// Params: spread (default 8) — n uniform in [Size, Size+spread); p
// (default 0.3) — extra-edge density.
//
// jitter (default 0) — when > 0 the family is "nearby instances": one
// base graph of exactly Size nodes (derived from the spec seed alone, so
// every instance regenerates it identically), where each instance
// rescales every NON-tree edge upward by (1 + jitter·u), u uniform in
// [0, 1) from the instance rng. Raising non-MST weights provably never
// changes the MST (cut property), so the whole family shares one built
// tree: every LP has identical variables and coefficients and only its
// right-hand sides move — the "same network, drifting deviation prices"
// family of the Balcan–Pozzi–Sharma subsidy-learning direction, and the
// exact compatibility class basis homotopy is strongest on. spread is
// ignored.
//
// warm (default 0) — when nonzero each worker chains its LP solves
// through lp.Basis homotopy (sne.SolveBroadcastLPFrom): instance k warm
// starts from instance k−1's optimal basis. The optimum — every cost
// column — is unchanged, but the pivot-count column then depends on the
// chain, i.e. on the shard layout; leave warm off wherever byte-identical
// output across layouts matters (the goldens and the resume differential
// harness run warm=0, and TestSweepSNELPWarmMatchesCold pins warm to
// cold on everything but pivots).
func sneLPScenario() *Scenario {
	run := func(spec Spec, idx int, rng *rand.Rand, carry any) (Record, any, error) {
		var g *graph.Graph
		var n int
		if j := spec.Param("jitter", 0); j > 0 {
			n = spec.Size
			g = graph.RandomConnected(rand.New(rand.NewSource(spec.Seed^sneLPBaseSeed)), n, spec.Param("p", 0.3), 0.5, 3)
			mst, err := graph.MST(g)
			if err != nil {
				return Record{}, nil, err
			}
			onTree := make([]bool, g.M())
			for _, id := range mst {
				onTree[id] = true
			}
			for id := 0; id < g.M(); id++ {
				if !onTree[id] {
					g.SetWeight(id, g.Weight(id)*(1+j*rng.Float64()))
				}
			}
		} else {
			spread := int(spec.Param("spread", 8))
			if spread < 1 {
				spread = 1
			}
			n = spec.Size + rng.Intn(spread)
			g = graph.RandomConnected(rng, n, spec.Param("p", 0.3), 0.5, 3)
		}
		bg, err := broadcast.NewGame(g, 0)
		if err != nil {
			return Record{}, nil, err
		}
		mst, err := bg.MST()
		if err != nil {
			return Record{}, nil, err
		}
		st, err := broadcast.NewState(bg, mst)
		if err != nil {
			return Record{}, nil, err
		}
		var res *sne.Result
		var next any
		if spec.Param("warm", 0) != 0 {
			chain, _ := carry.(*sne.BroadcastLPChain)
			if chain == nil {
				chain = sne.NewBroadcastLPChain()
			}
			res, err = chain.Solve(st)
			next = chain
		} else {
			res, err = sne.SolveBroadcastLP(st)
		}
		if err != nil {
			return Record{}, nil, err
		}
		frac := res.Cost / st.Weight()
		return Record{
			Cells: table.FormatCells(n, g.M(), st.Weight(), res.Cost, frac, res.Pivots),
			Vals:  []float64{frac},
		}, next, nil
	}
	return &Scenario{
		Name:    "sne-lp",
		TableID: "E22",
		Title:   "Optimal SNE subsidies at sweep scale (sparse revised simplex)",
		Claim:   "Theorem 1: min-cost enforcement is an LP; Theorem 6 caps it at wgt(T)/e",
		Headers: []string{"n", "edges", "wgt(T)", "LP cost", "frac", "pivots"},
		Run: func(spec Spec, idx int, rng *rand.Rand) (Record, error) {
			rec, _, err := run(spec, idx, rng, nil)
			return rec, err
		},
		RunChained: run,
		Finalize: func(spec Spec, recs []Record, tb *table.Table) {
			maxFrac := 0.0
			for _, rec := range recs {
				if len(rec.Vals) > 0 && rec.Vals[0] > maxFrac {
					maxFrac = rec.Vals[0]
				}
			}
			tb.Note("max LP cost fraction: %.4f of wgt(T) (Theorem 6 guarantees ≤ 1/e ≈ %.4f always suffices)",
				maxFrac, numeric.InvE)
		},
	}
}

// enforceScenario is the Theorem-6 enforcement-cost sweep (experiment
// E21): on every instance the construction must spend exactly wgt(T)/e
// (unit multiplicities) and leave the MST an equilibrium.
//
// Params: spread (default 8) — n uniform in [Size, Size+spread); p
// (default 0.3) — extra-edge density.
func enforceScenario() *Scenario {
	return &Scenario{
		Name:    "enforce",
		TableID: "E21",
		Title:   "Theorem-6 enforcement cost at sweep scale",
		Claim:   "Theorem 6: subsidies of wgt(T)/e ≈ 0.3679·wgt(T) always suffice",
		Headers: []string{"n", "wgt(T)", "T6 cost", "T6 frac", "enforced"},
		Run: func(spec Spec, idx int, rng *rand.Rand) (Record, error) {
			spread := int(spec.Param("spread", 8))
			if spread < 1 {
				spread = 1
			}
			n := spec.Size + rng.Intn(spread)
			g := graph.RandomConnected(rng, n, spec.Param("p", 0.3), 0.5, 3)
			bg, err := broadcast.NewGame(g, 0)
			if err != nil {
				return Record{}, err
			}
			mst, err := bg.MST()
			if err != nil {
				return Record{}, err
			}
			st, err := broadcast.NewState(bg, mst)
			if err != nil {
				return Record{}, err
			}
			b, cert, err := subsidy.Enforce(st)
			if err != nil {
				return Record{}, err
			}
			frac := cert.Total / st.Weight()
			return Record{
				Cells: table.FormatCells(n, st.Weight(), cert.Total, frac, st.IsEquilibrium(b)),
				Vals:  []float64{frac},
			}, nil
		},
		Finalize: func(spec Spec, recs []Record, tb *table.Table) {
			maxDev := 0.0
			for _, rec := range recs {
				if len(rec.Vals) > 0 {
					if d := math.Abs(rec.Vals[0] - numeric.InvE); d > maxDev {
						maxDev = d
					}
				}
			}
			tb.Note("max |frac − 1/e| = %.2e across %d instances (Theorem 6 predicts exactly 1/e at unit multiplicities)", maxDev, len(recs))
		},
	}
}
