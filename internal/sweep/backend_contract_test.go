package sweep_test

import (
	"os"
	"path/filepath"
	"testing"

	"netdesign/internal/sweep"
	"netdesign/internal/sweep/backendtest"
)

// TestDirBackendContract holds the local-directory store to the shared
// backend contract — the same suite internal/fabric runs against the
// coordinator-served HTTP store, so durability semantics (append-only,
// torn-tail recovery, fsync windows) are pinned identically on both.
func TestDirBackendContract(t *testing.T) {
	backendtest.Run(t, func(t *testing.T) backendtest.Env {
		dir := t.TempDir()
		return backendtest.Env{
			Backend: sweep.NewDirBackend(dir),
			Tamper: func(t *testing.T, name string, mutate func([]byte) []byte) {
				t.Helper()
				path := filepath.Join(dir, name)
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
					t.Fatal(err)
				}
			},
		}
	})
}
