package sweep

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzCheckpointRoundTrip fuzzes the checkpoint codec from both ends:
// structured records must survive encode→decode bit-exactly (floats via
// the hex representation), and arbitrary bytes must never panic the
// decoder — anything it accepts must re-encode canonically. This mirrors
// the internal/instancefile fuzz pattern: parse-what-you-print, print-
// what-you-parse.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add(0, "cell", "note", 1.5, int64(0), []byte(`{"i":0,"c":["a"],"v":["0x1p+0"]}`))
	f.Add(7, "", "n=4: skipped", math.Inf(1), int64(12345), []byte(`{"i":3}`))
	f.Add(1<<30, "0.1250", "", -0.0, int64(1), []byte("not json"))
	f.Add(3, "a\nb", "τ", 1e-300, int64(1)<<60, []byte(`{"i":1,"v":["zz"]}`))
	f.Add(2, "x", "", 0.5, int64(7), []byte(`{"i":4,"w":250}`))
	f.Fuzz(func(t *testing.T, idx int, cell, note string, v float64, wall int64, raw []byte) {
		if idx >= 0 && wall >= 0 && utf8.ValidString(cell) && utf8.ValidString(note) {
			rec := Record{Index: idx, Cells: []string{cell}, Vals: []float64{v}, Notes: []string{note}, WallNS: wall}
			line, err := EncodeRecord(rec)
			if err != nil {
				t.Fatalf("encode %+v: %v", rec, err)
			}
			if bytes.IndexByte(line, '\n') >= 0 {
				t.Fatalf("encoded record spans lines: %q", line)
			}
			back, err := DecodeRecord(line)
			if err != nil {
				t.Fatalf("decode of own encoding %q: %v", line, err)
			}
			if back.Index != rec.Index || back.Cells[0] != cell || back.Notes[0] != note ||
				back.WallNS != wall ||
				math.Float64bits(back.Vals[0]) != math.Float64bits(v) {
				t.Fatalf("round trip changed record: %+v → %+v", rec, back)
			}
		}
		// Decoder robustness on arbitrary input: no panics, and accepted
		// lines re-encode to a fixed point.
		rec, err := DecodeRecord(raw)
		if err != nil {
			return
		}
		line, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("accepted record failed to re-encode: %v", err)
		}
		again, err := DecodeRecord(line)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v", err)
		}
		line2, err := EncodeRecord(again)
		if err != nil || !bytes.Equal(line, line2) {
			t.Fatalf("encoding not a fixed point: %q vs %q (%v)", line, line2, err)
		}
		// The torn-tail reader must accept any valid line as a whole
		// checkpoint and recover it.
		recs, n, rerr := readCheckpoint(append(append([]byte(nil), line...), '\n'))
		if rerr != nil || len(recs) != 1 || n != len(line)+1 {
			t.Fatalf("readCheckpoint on single valid line: %d recs, len %d, %v", len(recs), n, rerr)
		}
	})
}

// FuzzSpecParse fuzzes the sweep-spec parser: never panic, and every
// accepted spec must round-trip through WriteSpec→ParseSpec to an equal
// spec with a stable serialization.
func FuzzSpecParse(f *testing.F) {
	f.Add("sweep pos-trees\nseed 1\ncount 8\nsize 4\n")
	f.Add("# c\n\nsweep x\nseed -3\ncount 2\nsize 0\nparam p 0.25\nparam q 1e308\n")
	f.Add("sweep enforce\ncount 1000\nparam spread 8\nparam p 0.3\n")
	f.Add("count 0\n")
	f.Add("sweep a b\n")
	f.Add("param p NaN\nsweep x\ncount 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := ParseSpec(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteSpec(&buf, spec); err != nil {
			t.Fatalf("accepted spec failed to serialize: %+v: %v", spec, err)
		}
		first := buf.String()
		back, err := ParseSpec(strings.NewReader(first))
		if err != nil {
			t.Fatalf("serialized spec failed to re-parse:\n%s%v", first, err)
		}
		if !back.Equal(spec) {
			t.Fatalf("round trip changed spec: %+v → %+v", spec, back)
		}
		buf.Reset()
		if err := WriteSpec(&buf, back); err != nil || buf.String() != first {
			t.Fatalf("serialization not stable:\n%s---\n%s", first, buf.String())
		}
	})
}
