package directed

import (
	"math"
	"testing"

	"netdesign/internal/game"
	"netdesign/internal/numeric"
)

func TestDigraphBasics(t *testing.T) {
	d := NewDigraph(3)
	a := d.AddArc(0, 1, 1)
	b := d.AddArc(1, 2, 2)
	if d.N() != 3 || d.M() != 2 || d.Arc(a).To != 1 || d.Weight(b) != 2 {
		t.Error("digraph accessors wrong")
	}
	for name, fn := range map[string]func(){
		"self loop":  func() { d.AddArc(1, 1, 1) },
		"bad node":   func() { d.AddArc(0, 9, 1) },
		"neg weight": func() { d.AddArc(0, 2, -1) },
		"neg nodes":  func() { NewDigraph(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDirectionalityMatters(t *testing.T) {
	// Arc 0→1 exists but 1→0 does not: a player from 1 cannot use it.
	d := NewDigraph(3)
	d.AddArc(0, 1, 1)
	d.AddArc(1, 2, 1)
	gm, err := NewGame(d, []Player{{S: 0, T: 2}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(gm, [][]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !st.IsEquilibrium(nil) {
		t.Error("unique path should be an equilibrium")
	}
	// Reverse player has no path at all.
	gm2, err := NewGame(d, []Player{{S: 2, T: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewState(gm2, [][]int{{1, 0}}); err == nil {
		t.Error("reversed arcs accepted in a path")
	}
}

func TestStateValidation(t *testing.T) {
	d := NewDigraph(3)
	d.AddArc(0, 1, 1)
	d.AddArc(1, 2, 1)
	d.AddArc(0, 2, 1)
	gm, _ := NewGame(d, []Player{{S: 0, T: 2}})
	bad := [][][]int{
		{{}},        // empty
		{{0}},       // stops early
		{{1}},       // wrong start
		{{0, 1, 2}}, // revisits 0? arc 2 is 0→2, breaks at node 2
		{{9}},       // unknown arc
	}
	for i, paths := range bad {
		if _, err := NewState(gm, paths); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
	if _, err := NewGame(d, nil); err == nil {
		t.Error("empty players accepted")
	}
	if _, err := NewGame(d, []Player{{S: 0, T: 0}}); err == nil {
		t.Error("equal terminals accepted")
	}
}

// TestHnInstance reproduces the tight directed PoS example: the optimum
// is not an equilibrium, the all-direct profile is, and the ratio is
// H_n/(1+ε).
func TestHnInstance(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		inst, err := NewHnInstance(n, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := inst.OptState()
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqual(opt.EstablishedWeight(), 1.01) {
			t.Errorf("n=%d: opt weight %v", n, opt.EstablishedWeight())
		}
		if opt.IsEquilibrium(nil) {
			t.Errorf("n=%d: shared optimum must not be an equilibrium (player n defects)", n)
		}
		direct, err := inst.DirectState()
		if err != nil {
			t.Fatal(err)
		}
		if !direct.IsEquilibrium(nil) {
			t.Errorf("n=%d: all-direct must be an equilibrium", n)
		}
		if !numeric.AlmostEqual(direct.EstablishedWeight(), numeric.Harmonic(n)) {
			t.Errorf("n=%d: direct weight %v ≠ H_n", n, direct.EstablishedWeight())
		}
		// Potential of the equilibrium is below the optimum's potential —
		// the Anshelevich potential argument in action.
		if direct.Potential(nil) > opt.Potential(nil)+1e-9 {
			// Not required in general, but holds here and documents the
			// potential-descent reasoning.
			t.Logf("n=%d: potential(direct)=%v potential(opt)=%v", n,
				direct.Potential(nil), opt.Potential(nil))
		}
	}
}

// TestHnSNE: enforcing the shared optimum needs exactly ε subsidies on
// the relay arc (the binding constraint is player n's direct option).
func TestHnSNE(t *testing.T) {
	for _, n := range []int{2, 5, 10} {
		eps := 0.05
		inst, err := NewHnInstance(n, eps)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := inst.OptState()
		if err != nil {
			t.Fatal(err)
		}
		b, cost, err := SolveSNE(opt, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !opt.IsEquilibrium(b) {
			t.Fatalf("n=%d: SNE result does not enforce", n)
		}
		// Player n's constraint: (1+ε−b)/n ≤ 1/n  ⟺  b ≥ ε.
		if !numeric.AlmostEqualTol(cost, eps, 1e-6) {
			t.Errorf("n=%d: SNE cost %v, want ε = %v", n, cost, eps)
		}
	}
}

func TestBestResponseUnreachable(t *testing.T) {
	d := NewDigraph(3)
	d.AddArc(0, 1, 1)
	d.AddArc(0, 2, 5)
	gm, _ := NewGame(d, []Player{{S: 0, T: 2}})
	st, err := NewState(gm, [][]int{{1}})
	if err != nil {
		t.Fatal(err)
	}
	p, c := st.BestResponse(0, nil)
	if p == nil || !numeric.AlmostEqual(c, 5) {
		t.Errorf("BR = %v %v", p, c)
	}
}

func TestPlayerCostWithSubsidy(t *testing.T) {
	inst, err := NewHnInstance(3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := inst.OptState()
	if err != nil {
		t.Fatal(err)
	}
	b := make(game.Subsidy, inst.Game.D.M())
	b[inst.Shared] = 0.2
	if got := opt.PlayerCost(0, b); !numeric.AlmostEqual(got, 1.0/3) {
		t.Errorf("subsidized share %v, want 1/3", got)
	}
	if u := opt.Usage(inst.Shared); u != 3 {
		t.Errorf("usage %d", u)
	}
}

func TestNewHnInstanceValidation(t *testing.T) {
	if _, err := NewHnInstance(0, 0.1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewHnInstance(3, 0); err == nil {
		t.Error("eps=0 accepted")
	}
}

var _ = math.Inf
