// Package directed implements fair-cost-sharing network design games on
// directed graphs. The paper works with undirected games and notes that
// "this strengthens our results since they can be adapted easily to
// network design games on directed graphs"; directed games are also
// where the H_n price-of-stability bound of Anshelevich et al. is tight,
// which this package reproduces (experiment E18). Enforcement remains an
// LP: the package includes a row-generation SNE solver whose separation
// oracle is directed Dijkstra.
package directed

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"netdesign/internal/game"
	"netdesign/internal/lp"
	"netdesign/internal/numeric"
)

// Arc is a directed edge with non-negative weight.
type Arc struct {
	ID   int
	From int
	To   int
	W    float64
}

// Digraph is a directed multigraph with stable arc IDs.
type Digraph struct {
	n    int
	arcs []Arc
	out  [][]int // out[v] = arc IDs leaving v
}

// NewDigraph returns a digraph with n nodes.
func NewDigraph(n int) *Digraph {
	if n < 0 {
		panic("directed: negative node count")
	}
	return &Digraph{n: n, out: make([][]int, n)}
}

// N returns the node count.
func (d *Digraph) N() int { return d.n }

// M returns the arc count.
func (d *Digraph) M() int { return len(d.arcs) }

// AddArc inserts from→to with weight w and returns its ID.
func (d *Digraph) AddArc(from, to int, w float64) int {
	if from < 0 || from >= d.n || to < 0 || to >= d.n {
		panic(fmt.Sprintf("directed: AddArc(%d,%d) out of range", from, to))
	}
	if from == to {
		panic("directed: self-loops are not allowed")
	}
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		panic(fmt.Sprintf("directed: invalid weight %v", w))
	}
	id := len(d.arcs)
	d.arcs = append(d.arcs, Arc{ID: id, From: from, To: to, W: w})
	d.out[from] = append(d.out[from], id)
	return id
}

// Arc returns the arc with the given ID.
func (d *Digraph) Arc(id int) Arc { return d.arcs[id] }

// Weight returns an arc's weight.
func (d *Digraph) Weight(id int) float64 { return d.arcs[id].W }

// dijkstra computes shortest directed distances from src under wf.
func (d *Digraph) dijkstra(src int, wf func(id int) float64) ([]float64, []int) {
	dist := make([]float64, d.n)
	par := make([]int, d.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		par[i] = -1
	}
	dist[src] = 0
	h := &arcHeap{{node: src}}
	done := make([]bool, d.n)
	for h.Len() > 0 {
		it := heap.Pop(h).(arcItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, id := range d.out[it.node] {
			a := d.arcs[id]
			w := wf(id)
			if w < 0 {
				panic("directed: negative arc cost")
			}
			if nd := it.dist + w; nd < dist[a.To] {
				dist[a.To] = nd
				par[a.To] = id
				heap.Push(h, arcItem{node: a.To, dist: nd})
			}
		}
	}
	return dist, par
}

type arcItem struct {
	node int
	dist float64
}

type arcHeap []arcItem

func (h arcHeap) Len() int            { return len(h) }
func (h arcHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h arcHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *arcHeap) Push(x interface{}) { *h = append(*h, x.(arcItem)) }
func (h *arcHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Player is a directed terminal pair.
type Player struct{ S, T int }

// Game is a directed fair-cost-sharing game.
type Game struct {
	D       *Digraph
	Players []Player
}

// NewGame validates and returns a directed game.
func NewGame(d *Digraph, players []Player) (*Game, error) {
	for i, p := range players {
		if p.S < 0 || p.S >= d.n || p.T < 0 || p.T >= d.n || p.S == p.T {
			return nil, fmt.Errorf("directed: player %d terminals invalid", i)
		}
	}
	if len(players) == 0 {
		return nil, errors.New("directed: no players")
	}
	return &Game{D: d, Players: players}, nil
}

// State is a strategy profile: one directed path (arc-ID list) per player.
type State struct {
	game  *Game
	Paths [][]int
	usage []int
	uses  [][]bool
}

// NewState validates the profile and caches usage counts.
func NewState(gm *Game, paths [][]int) (*State, error) {
	if len(paths) != len(gm.Players) {
		return nil, fmt.Errorf("directed: %d paths for %d players", len(paths), len(gm.Players))
	}
	st := &State{game: gm, Paths: paths, usage: make([]int, gm.D.M()), uses: make([][]bool, len(paths))}
	for i, p := range paths {
		cur := gm.Players[i].S
		visited := map[int]bool{cur: true}
		if len(p) == 0 {
			return nil, fmt.Errorf("directed: player %d path empty", i)
		}
		st.uses[i] = make([]bool, gm.D.M())
		for _, id := range p {
			if id < 0 || id >= gm.D.M() {
				return nil, fmt.Errorf("directed: player %d uses unknown arc %d", i, id)
			}
			a := gm.D.Arc(id)
			if a.From != cur {
				return nil, fmt.Errorf("directed: player %d path breaks at node %d", i, cur)
			}
			cur = a.To
			if visited[cur] {
				return nil, fmt.Errorf("directed: player %d path revisits node %d", i, cur)
			}
			visited[cur] = true
			st.uses[i][id] = true
			st.usage[id]++
		}
		if cur != gm.Players[i].T {
			return nil, fmt.Errorf("directed: player %d path ends at %d", i, cur)
		}
	}
	return st, nil
}

// Usage returns the number of players on an arc.
func (st *State) Usage(id int) int { return st.usage[id] }

// EstablishedWeight is the social cost (total weight of used arcs).
func (st *State) EstablishedWeight() float64 {
	sum := 0.0
	for id, u := range st.usage {
		if u > 0 {
			sum += st.game.D.Weight(id)
		}
	}
	return sum
}

// PlayerCost returns player i's fair share under subsidies b (indexed by
// arc ID; game.Subsidy is reused as a plain []float64).
func (st *State) PlayerCost(i int, b game.Subsidy) float64 {
	sum := 0.0
	for _, id := range st.Paths[i] {
		sum += (st.game.D.Weight(id) - b.At(id)) / float64(st.usage[id])
	}
	return sum
}

// BestResponse returns player i's cheapest deviation and its cost.
func (st *State) BestResponse(i int, b game.Subsidy) ([]int, float64) {
	wf := func(id int) float64 {
		den := st.usage[id] + 1
		if st.uses[i][id] {
			den--
		}
		return (st.game.D.Weight(id) - b.At(id)) / float64(den)
	}
	dist, par := st.game.D.dijkstra(st.game.Players[i].S, wf)
	t := st.game.Players[i].T
	if math.IsInf(dist[t], 1) {
		return nil, dist[t]
	}
	var rev []int
	for v := t; v != st.game.Players[i].S; {
		id := par[v]
		rev = append(rev, id)
		v = st.game.D.Arc(id).From
	}
	for a, z := 0, len(rev)-1; a < z; a, z = a+1, z-1 {
		rev[a], rev[z] = rev[z], rev[a]
	}
	return rev, dist[t]
}

// IsEquilibrium reports whether no player can profitably deviate.
func (st *State) IsEquilibrium(b game.Subsidy) bool {
	for i := range st.Paths {
		cur := st.PlayerCost(i, b)
		if p, c := st.BestResponse(i, b); p != nil && numeric.Less(c, cur) {
			return false
		}
	}
	return true
}

// Potential returns Rosenthal's potential (directed games are potential
// games too, so pure equilibria exist and H_n bounds the PoS — tightly,
// unlike the undirected case).
func (st *State) Potential(b game.Subsidy) float64 {
	sum := 0.0
	for id, u := range st.usage {
		if u > 0 {
			sum += (st.game.D.Weight(id) - b.At(id)) * numeric.Harmonic(u)
		}
	}
	return sum
}

// SolveSNE computes minimum subsidies enforcing st by row generation with
// the directed Dijkstra oracle — Theorem 1 verbatim on digraphs.
func SolveSNE(st *State, maxIters int) (game.Subsidy, float64, error) {
	b, cost, _, err := SolveSNEFrom(st, maxIters, nil)
	return b, cost, err
}

// SolveSNEFrom is SolveSNE seeded with a basis from a structurally nearby
// instance (cross-instance homotopy) and additionally returning the final
// optimal basis, so a sweep over a family of digraph states can chain
// warm starts. A nil or incompatible warm basis degrades to a cold first
// solve.
func SolveSNEFrom(st *State, maxIters int, warm *lp.Basis) (game.Subsidy, float64, *lp.Basis, error) {
	if maxIters <= 0 {
		maxIters = 10000
	}
	d := st.game.D
	varOf := make([]int, d.M())
	model := lp.NewModel()
	for id, u := range st.usage {
		if u > 0 {
			varOf[id] = model.AddVar(1, d.Weight(id))
		} else {
			varOf[id] = -1
		}
	}
	b := make(game.Subsidy, d.M())
	onPath := make([]bool, d.M())
	cols := make([]int, 0, 16)
	vals := make([]float64, 0, 16)
	basis := warm
	for iter := 0; iter < maxIters; iter++ {
		violID := -1
		var violPath []int
		for i := range st.Paths {
			cur := st.PlayerCost(i, b)
			if p, c := st.BestResponse(i, b); p != nil && numeric.Less(c, cur) {
				violID, violPath = i, p
				break
			}
		}
		if violID == -1 {
			for id := range b {
				b[id] = numeric.Clamp(b[id], 0, d.Weight(id))
			}
			return b, b.Cost(), basis, nil
		}
		for _, id := range violPath {
			onPath[id] = true
		}
		cols, vals = cols[:0], vals[:0]
		rhs := 0.0
		for _, id := range st.Paths[violID] {
			if onPath[id] {
				continue
			}
			na := float64(st.usage[id])
			cols = append(cols, varOf[id])
			vals = append(vals, 1/na)
			rhs += d.Weight(id) / na
		}
		for _, id := range violPath {
			if st.uses[violID][id] {
				continue
			}
			den := float64(st.usage[id] + 1)
			if j := varOf[id]; j >= 0 {
				cols = append(cols, j)
				vals = append(vals, -1/den)
			}
			rhs -= d.Weight(id) / den
		}
		for _, id := range violPath {
			onPath[id] = false
		}
		model.AddRow(cols, vals, lp.GE, rhs)
		sol, err := model.ResolveFrom(basis)
		if err != nil {
			return nil, 0, nil, err
		}
		if sol.Status != lp.Optimal {
			return nil, 0, nil, fmt.Errorf("directed: SNE LP status %v", sol.Status)
		}
		basis = sol.Basis
		for id, j := range varOf {
			if j >= 0 {
				b[id] = numeric.Clamp(sol.X[j], 0, d.Weight(id))
			}
		}
	}
	return nil, 0, nil, errors.New("directed: SNE row generation exceeded budget")
}

// HnInstance builds the classic directed instance showing PoS = H_n is
// tight (Anshelevich et al., recalled in the paper's related work):
// every player i can reach the sink directly for 1/i, or reach a shared
// relay for free and split the relay's 1+ε arc. The optimum shares the
// relay (cost 1+ε); the unique equilibrium is everyone-direct (cost H_n).
type HnInstance struct {
	Game    *Game
	Sink    int
	Relay   int
	Direct  []int // arc per player
	Entry   []int // free arc per player into the relay
	Shared  int   // relay→sink arc of weight 1+ε
	Epsilon float64
}

// NewHnInstance constructs the instance for n players.
func NewHnInstance(n int, eps float64) (*HnInstance, error) {
	if n < 1 || eps <= 0 {
		return nil, errors.New("directed: need n ≥ 1 and ε > 0")
	}
	d := NewDigraph(n + 2)
	sink := n
	relay := n + 1
	inst := &HnInstance{Sink: sink, Relay: relay, Epsilon: eps}
	var players []Player
	for i := 0; i < n; i++ {
		inst.Direct = append(inst.Direct, d.AddArc(i, sink, 1/float64(i+1)))
		inst.Entry = append(inst.Entry, d.AddArc(i, relay, 0))
		players = append(players, Player{S: i, T: sink})
	}
	inst.Shared = d.AddArc(relay, sink, 1+eps)
	gm, err := NewGame(d, players)
	if err != nil {
		return nil, err
	}
	inst.Game = gm
	return inst, nil
}

// OptState returns the all-shared profile (the social optimum).
func (inst *HnInstance) OptState() (*State, error) {
	paths := make([][]int, len(inst.Game.Players))
	for i := range paths {
		paths[i] = []int{inst.Entry[i], inst.Shared}
	}
	return NewState(inst.Game, paths)
}

// DirectState returns the all-direct profile (the unique equilibrium).
func (inst *HnInstance) DirectState() (*State, error) {
	paths := make([][]int, len(inst.Game.Players))
	for i := range paths {
		paths[i] = []int{inst.Direct[i]}
	}
	return NewState(inst.Game, paths)
}
