package directed

import (
	"math"
	"testing"

	"netdesign/internal/lp"
	"netdesign/internal/numeric"
)

// TestSolveSNEFromChainsAcrossInstances chains warm starts through the
// H_n family at drifting ε — same digraph structure, perturbed weights —
// and holds each warm result to the analytic optimum (cost exactly ε)
// and to the cold solve.
func TestSolveSNEFromChainsAcrossInstances(t *testing.T) {
	const n = 6
	var chain *lp.Basis
	for k := 0; k < 8; k++ {
		eps := 0.02 + 0.01*float64(k)
		inst, err := NewHnInstance(n, eps)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := inst.OptState()
		if err != nil {
			t.Fatal(err)
		}
		bw, cw, next, err := SolveSNEFrom(opt, 0, chain)
		if err != nil {
			t.Fatalf("inst %d: warm: %v", k, err)
		}
		if !opt.IsEquilibrium(bw) {
			t.Fatalf("inst %d: warm result does not enforce", k)
		}
		if !numeric.AlmostEqualTol(cw, eps, 1e-6) {
			t.Fatalf("inst %d: warm cost %v, want ε = %v", k, cw, eps)
		}
		_, cc, err := SolveSNE(opt, 0)
		if err != nil {
			t.Fatalf("inst %d: cold: %v", k, err)
		}
		if math.Abs(cw-cc) > 1e-6*(1+math.Abs(cc)) {
			t.Fatalf("inst %d: warm %v vs cold %v", k, cw, cc)
		}
		chain = next
	}
}
