package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 100} {
		n := 237
		var hits [237]int32
		ForEach(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Error("fn called for empty range")
	}
}

func TestMapOrder(t *testing.T) {
	in := make([]int, 100)
	for i := range in {
		in[i] = i
	}
	out := Map(in, 8, func(x int) int { return x * x })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMinBy(t *testing.T) {
	arg, min, ok := MinBy(50, 4, func(i int) float64 { return float64((i - 33) * (i - 33)) })
	if !ok || arg != 33 || min != 0 {
		t.Fatalf("MinBy = %d %v %v", arg, min, ok)
	}
	if _, _, ok := MinBy(0, 4, nil); ok {
		t.Error("MinBy on empty range should report !ok")
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit worker count ignored")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Error("default worker count must be positive")
	}
}

func TestForEachChunkCoversAllIndices(t *testing.T) {
	for _, workers := range []int{-1, 1, 2, 7, 100} {
		n := 237
		var hits [237]int32
		var calls atomic.Int32
		ForEachChunk(n, workers, func(worker, lo, hi int) {
			calls.Add(1)
			if lo >= hi || lo < 0 || hi > n {
				t.Errorf("workers=%d: bad chunk [%d,%d)", workers, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
		if workers >= 1 && workers <= n && int(calls.Load()) > workers {
			t.Fatalf("workers=%d: %d chunk calls", workers, calls.Load())
		}
	}
}

func TestForEachChunkWorkerIdentity(t *testing.T) {
	// Chunks are disjoint, contiguous, and each worker id appears at most
	// once — the property per-worker state (sweep's reseeded rngs) needs.
	var mu sync.Mutex
	seen := map[int][2]int{}
	ForEachChunk(10, 3, func(worker, lo, hi int) {
		mu.Lock()
		defer mu.Unlock()
		if _, dup := seen[worker]; dup {
			t.Errorf("worker %d invoked twice", worker)
		}
		seen[worker] = [2]int{lo, hi}
	})
	total := 0
	for _, r := range seen {
		total += r[1] - r[0]
	}
	if total != 10 {
		t.Fatalf("chunks cover %d of 10 indices", total)
	}
}

func TestForEachChunkEmpty(t *testing.T) {
	called := false
	ForEachChunk(0, 4, func(int, int, int) { called = true })
	ForEachChunk(-3, 4, func(int, int, int) { called = true })
	if called {
		t.Error("fn called for empty range")
	}
}
