package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 100} {
		n := 237
		var hits [237]int32
		ForEach(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Error("fn called for empty range")
	}
}

func TestMapOrder(t *testing.T) {
	in := make([]int, 100)
	for i := range in {
		in[i] = i
	}
	out := Map(in, 8, func(x int) int { return x * x })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMinBy(t *testing.T) {
	arg, min, ok := MinBy(50, 4, func(i int) float64 { return float64((i - 33) * (i - 33)) })
	if !ok || arg != 33 || min != 0 {
		t.Fatalf("MinBy = %d %v %v", arg, min, ok)
	}
	if _, _, ok := MinBy(0, 4, nil); ok {
		t.Error("MinBy on empty range should report !ok")
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit worker count ignored")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Error("default worker count must be positive")
	}
}
