// Package parallel provides the small worker-pool primitives used by the
// experiment harness, the all-or-nothing branch-and-bound and parameter
// sweeps. It follows the fixed-worker-count pattern from Effective Go:
// a bounded number of goroutines draining an index channel.
package parallel

import (
	"runtime"
	"sync"
)

// Workers returns the worker count to use when the caller passes n ≤ 0:
// the number of usable CPUs.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach invokes fn(i) for every i in [0, n) using at most workers
// goroutines (≤ 0 means GOMAXPROCS). It returns when all calls complete.
// fn must be safe for concurrent invocation on distinct indices.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// ForEachChunk splits [0, n) into one contiguous chunk per worker and
// invokes fn(worker, lo, hi) concurrently, one call per non-empty chunk
// (≤ 0 workers means GOMAXPROCS; never more workers than items). Unlike
// ForEach it hands each goroutine its identity and whole range at once,
// so callers can hold per-worker state — the sweep engine's dispatch
// loop (internal/sweep.runIndices) owns one reseeded rng per worker this
// way. fn must be safe for concurrent invocation on disjoint ranges.
func ForEachChunk(n, workers int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	if w == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(k int) {
			defer wg.Done()
			lo, hi := k*chunk, (k+1)*chunk
			if hi > n {
				hi = n
			}
			if lo < hi {
				fn(k, lo, hi)
			}
		}(k)
	}
	wg.Wait()
}

// Map applies fn to every item concurrently and returns the results in
// input order.
func Map[T, R any](items []T, workers int, fn func(T) R) []R {
	out := make([]R, len(items))
	ForEach(len(items), workers, func(i int) {
		out[i] = fn(items[i])
	})
	return out
}

// MinBy runs fn(i) for i in [0,n) concurrently and returns the index and
// value minimizing the returned score; ok is false when n == 0. Used for
// "best tree under a predicate"-style sweeps.
func MinBy(n, workers int, fn func(i int) float64) (argmin int, min float64, ok bool) {
	if n == 0 {
		return 0, 0, false
	}
	scores := make([]float64, n)
	ForEach(n, workers, func(i int) { scores[i] = fn(i) })
	argmin = 0
	min = scores[0]
	for i := 1; i < n; i++ {
		if scores[i] < min {
			min = scores[i]
			argmin = i
		}
	}
	return argmin, min, true
}
