package chaos

import (
	"fmt"
	"testing"

	"netdesign/internal/sweep"
)

func corpusSpec() sweep.Spec {
	return sweep.Spec{Scenario: "enforce", Seed: 17, Count: 12, Size: 5, Params: map[string]float64{"spread": 3}}
}

// TestFaultScheduleCorpus replays a corpus of seeded fault schedules —
// worker kills, partitions, lease expiry, torn checkpoint tails — and
// asserts every one of them drains to a merged table byte-identical to
// the serial oracle. A failing seed is fully reproducible: rerun with
// -run 'TestFaultScheduleCorpus/seed-N'.
func TestFaultScheduleCorpus(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			h := NewHarness(t, corpusSpec(), 4)
			h.Play(NewSchedule(seed, 24))
		})
	}
}

// TestScheduleDeterministic pins the schedule derivation itself: the
// replay guarantee is only as good as the script being a pure function
// of its seed.
func TestScheduleDeterministic(t *testing.T) {
	a, b := NewSchedule(7, 50), NewSchedule(7, 50)
	if len(a.Steps) != len(b.Steps) {
		t.Fatal("schedule length varies for one seed")
	}
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] {
			t.Fatalf("step %d differs: %+v vs %+v", i, a.Steps[i], b.Steps[i])
		}
	}
}
