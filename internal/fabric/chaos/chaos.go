// Package chaos is the deterministic fault-injection harness for the
// sweep fabric. A Schedule — derived entirely from a seed — scripts a
// sequence of faults against a real coordinator (worker kills at record
// boundaries, network partitions of the coordinator's HTTP surface,
// dropped heartbeats aging into lease expiry, host crashes tearing the
// final checkpoint line mid-write), and the harness replays it
// single-threaded under a hand-advanced clock: every lease expiry,
// straggler detection and speculative grant is a pure function of the
// schedule, so a failing seed replays exactly.
//
// The differential contract is the same one every layer below honors:
// after any schedule, the surviving fleet drains the sweep and the
// merged table must be byte-identical to the serial oracle. Faults may
// cost recomputation, never correctness.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"netdesign/internal/fabric"
	"netdesign/internal/sweep"
)

// Op is one kind of scripted fault step.
type Op int

const (
	// OpRun: a healthy worker acquires one grant and completes it.
	OpRun Op = iota
	// OpKill: a worker acquires a grant and dies at a record boundary
	// after Arg records — no complete, no further heartbeats, lease left
	// to expire.
	OpKill
	// OpPartition: the coordinator is unreachable for the next Arg
	// requests; the following healthy worker heals through retries.
	OpPartition
	// OpAge: the clock advances within the lease TTL, ripening held
	// leases into stragglers.
	OpAge
	// OpExpire: the clock advances past the TTL, fencing every
	// non-heartbeating lease.
	OpExpire
	// OpTearTail: a host crash tears the final line of a partial
	// canonical checkpoint in half; resume must recover the valid prefix
	// and recompute the torn record.
	OpTearTail
)

func (o Op) String() string {
	switch o {
	case OpRun:
		return "run"
	case OpKill:
		return "kill"
	case OpPartition:
		return "partition"
	case OpAge:
		return "age"
	case OpExpire:
		return "expire"
	case OpTearTail:
		return "tear-tail"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Step is one schedule entry: an op plus its argument (records before
// the kill, requests eaten by the partition).
type Step struct {
	Op  Op
	Arg int
}

// Schedule is a deterministic fault script: the same seed always yields
// the same steps, and replaying them against the harness is
// reproducible end to end.
type Schedule struct {
	Seed  int64
	Steps []Step
}

// NewSchedule derives a steps-long schedule from seed. Healthy runs are
// weighted double so most schedules make progress between faults.
func NewSchedule(seed int64, steps int) Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{Seed: seed}
	for i := 0; i < steps; i++ {
		switch rng.Intn(8) {
		case 0, 1, 2:
			s.Steps = append(s.Steps, Step{Op: OpRun})
		case 3:
			s.Steps = append(s.Steps, Step{Op: OpKill, Arg: 1 + rng.Intn(3)})
		case 4:
			s.Steps = append(s.Steps, Step{Op: OpPartition, Arg: 1 + rng.Intn(3)})
		case 5:
			s.Steps = append(s.Steps, Step{Op: OpAge})
		case 6:
			s.Steps = append(s.Steps, Step{Op: OpExpire})
		case 7:
			s.Steps = append(s.Steps, Step{Op: OpTearTail})
		}
	}
	return s
}

// flakyTransport injects partitions: while fail > 0 every request is
// eaten by a transport error. Single-threaded by construction.
type flakyTransport struct {
	base http.RoundTripper
	fail int
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if f.fail > 0 {
		f.fail--
		return nil, errors.New("chaos: injected partition")
	}
	return f.base.RoundTrip(req)
}

// leaseTTL is the harness lease TTL; OpAge advances less than it,
// OpExpire more. Large against the 100ms-per-record synthetic compute
// time so a worker never expires its own lease mid-shard.
const leaseTTL = 5 * time.Second

// Harness is one fabric under scripted fault injection.
type Harness struct {
	t     *testing.T
	spec  sweep.Spec
	dir   string
	now   time.Time
	coord *fabric.Coordinator
	srv   *httptest.Server
	flaky *flakyTransport
	step  int
}

// NewHarness boots a coordinator over a fresh store with a fake clock.
func NewHarness(t *testing.T, spec sweep.Spec, shards int) *Harness {
	t.Helper()
	h := &Harness{t: t, spec: spec, dir: t.TempDir(), now: time.Unix(1_000_000, 0)}
	coord, err := fabric.New(fabric.Config{
		Spec:            spec,
		Shards:          shards,
		Store:           sweep.NewDirBackend(h.dir),
		LeaseTTL:        leaseTTL,
		StragglerMin:    time.Second,
		StragglerFactor: 3,
		Clock:           func() time.Time { return h.now },
	})
	if err != nil {
		t.Fatal(err)
	}
	h.coord = coord
	h.srv = httptest.NewServer(coord.Handler())
	t.Cleanup(h.srv.Close)
	h.flaky = &flakyTransport{base: h.srv.Client().Transport}
	return h
}

// worker builds a fresh single-goroutine worker: heartbeats disabled
// (the schedule owns time), sleeps elided, retry jitter pinned.
func (h *Harness) worker(id string, interrupt func() bool) *fabric.Worker {
	return &fabric.Worker{
		Client: &fabric.Client{
			URL:  h.srv.URL,
			HTTP: &http.Client{Transport: h.flaky},
			Retry: fabric.Retry{
				Sleep: func(time.Duration) {},
				Rand:  func() float64 { return 0.5 },
			},
		},
		ID:        id,
		Options:   sweep.Options{Workers: 1},
		Interrupt: interrupt,
		Heartbeat: -1,
		Sleep:     func(time.Duration) {},
	}
}

// runWorker executes one acquire cycle. killAfter > 0 kills the worker
// at that record boundary. Every instance poll advances the fake clock
// 100ms, standing in for compute time so completed shards establish a
// straggler baseline.
func (h *Harness) runWorker(id string, killAfter int) (done bool) {
	h.t.Helper()
	polls := 0
	w := h.worker(id, func() bool {
		polls++
		h.now = h.now.Add(100 * time.Millisecond)
		return killAfter > 0 && polls > killAfter
	})
	done, err := w.RunOnce()
	if err != nil {
		h.t.Fatalf("seed replay: worker %s (step %d): %v", id, h.step, err)
	}
	return done
}

// tearTail simulates a host crash on the store: the final line of some
// partial canonical checkpoint loses its trailing half, exactly the
// state an interrupted write leaves behind. Completed shards are out of
// bounds — their records were fsynced at close, and a crash cannot
// un-sync durable data.
func (h *Harness) tearTail() {
	h.t.Helper()
	status := h.coord.Status()
	for _, info := range status.ShardInfo {
		if info.State == "done" {
			continue
		}
		path := filepath.Join(h.dir, sweep.ShardName(info.Shard, status.Shards))
		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			h.t.Fatal(err)
		}
		if len(data) == 0 || data[len(data)-1] != '\n' {
			continue
		}
		start := bytes.LastIndexByte(data[:len(data)-1], '\n') + 1
		torn := data[:start+(len(data)-1-start)/2]
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			h.t.Fatal(err)
		}
		return // one crash per step
	}
}

// Play replays the schedule, then drains the sweep with healthy workers
// (expiring abandoned leases between rounds) and verifies the end state:
// not poisoned, all shards complete, merged table byte-identical to the
// serial oracle.
func (h *Harness) Play(s Schedule) {
	h.t.Helper()
	for i, step := range s.Steps {
		h.step = i
		id := fmt.Sprintf("w%03d-%s", i, step.Op)
		switch step.Op {
		case OpRun:
			h.runWorker(id, 0)
		case OpKill:
			h.runWorker(id, step.Arg)
		case OpPartition:
			h.flaky.fail = step.Arg
			h.runWorker(id, 0)
		case OpAge:
			h.now = h.now.Add(2 * time.Second)
		case OpExpire:
			h.now = h.now.Add(leaseTTL + time.Second)
		case OpTearTail:
			h.tearTail()
		}
	}
	h.flaky.fail = 0
	for i := 0; ; i++ {
		if i > 200 {
			h.t.Fatalf("seed %d: sweep did not drain; status %+v", s.Seed, h.coord.Status())
		}
		h.now = h.now.Add(leaseTTL + time.Second)
		if h.runWorker(fmt.Sprintf("drain%03d", i), 0) {
			break
		}
	}
	h.verify(s)
}

func (h *Harness) verify(s Schedule) {
	h.t.Helper()
	if err := h.coord.Err(); err != nil {
		h.t.Fatalf("seed %d poisoned the run: %v", s.Seed, err)
	}
	status := h.coord.Status()
	if !status.Done {
		h.t.Fatalf("seed %d: drained but not done: %+v", s.Seed, status)
	}
	got, err := h.coord.Merge()
	if err != nil {
		h.t.Fatalf("seed %d: merge: %v", s.Seed, err)
	}
	want, err := sweep.RunSerial(h.spec)
	if err != nil {
		h.t.Fatal(err)
	}
	var gotText, wantText bytes.Buffer
	got.Render(&gotText)
	want.Render(&wantText)
	if gotText.String() != wantText.String() {
		h.t.Fatalf("seed %d: merged table diverged from serial oracle\nschedule: %v\n--- serial ---\n%s--- fabric ---\n%s",
			s.Seed, s.Steps, wantText.String(), gotText.String())
	}
}
