package fabric

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"netdesign/internal/sweep"
)

// Worker executes shard leases against a coordinator: acquire, compute
// through the coordinator-served checkpoint store, heartbeat until done,
// complete. A worker holds no sweep state of its own — kill it at any
// instant and the coordinator reassigns its shard, which resumes from
// the last durable record.
type Worker struct {
	Client *Client
	ID     string // diagnostic label sent with acquires

	// Options is the per-shard execution tuning (worker goroutines, sync
	// window). Its Interrupt slot is owned by the worker: lease loss is
	// parked there, combined with the optional Interrupt below.
	Options sweep.Options

	// Interrupt, when non-nil, is polled before each instance in addition
	// to the lease-loss check; returning true abandons the current
	// attempt without completing it. The chaos harness kills workers at
	// record boundaries through this hook.
	Interrupt func() bool

	// Heartbeat is the interval between lease extensions: 0 means a third
	// of the granted TTL, negative disables the heartbeat goroutine
	// entirely (the chaos harness drives heartbeats explicitly to keep
	// runs single-threaded and deterministic).
	Heartbeat time.Duration

	// Sleep is how the worker waits out coordinator back-off hints and
	// failure backoffs; nil means time.Sleep.
	Sleep func(time.Duration)

	// MaxFailures caps consecutive RunOnce errors before Run gives up;
	// <= 0 means DefaultMaxFailures.
	MaxFailures int

	spec     sweep.Spec // cached after the first load
	haveSpec bool
}

// DefaultMaxFailures is the consecutive-error budget of Worker.Run.
const DefaultMaxFailures = 5

func (w *Worker) sleep(d time.Duration) {
	if w.Sleep != nil {
		w.Sleep(d)
	} else {
		time.Sleep(d)
	}
}

// RunOnce performs one acquire cycle: it returns done=true when the
// coordinator reports the sweep complete, and done=false after executing
// (or abandoning) a single grant or waiting out a back-off hint. An
// abandoned attempt — lease lost, interrupt fired — is not an error; the
// coordinator's expiry machinery owns the cleanup.
func (w *Worker) RunOnce() (done bool, err error) {
	res, err := w.Client.Acquire(w.ID)
	if err != nil {
		return false, err
	}
	if res.Done {
		return true, nil
	}
	if res.Grant == nil {
		w.sleep(res.Wait())
		return false, nil
	}
	return w.runGrant(res.Grant)
}

// runGrant executes one grant; done=true means this worker's complete
// finished the whole sweep (the coordinator piggybacks sweep completion
// on the complete response, since a -once coordinator may exit before
// the worker's next acquire could ask).
func (w *Worker) runGrant(g *Grant) (done bool, err error) {
	backend := w.Client.Backend(g.Lease)
	if !w.haveSpec {
		spec, err := backend.LoadSpec()
		if err != nil {
			return false, fmt.Errorf("fabric: worker loading spec: %w", err)
		}
		w.spec, w.haveSpec = spec, true
	}

	// Heartbeat until the shard is done or the lease is lost. The lost
	// flag reaches the compute loop through Options.Interrupt, so a
	// fenced worker stops burning CPU on records the coordinator will
	// refuse anyway.
	var lost, interrupted atomic.Bool
	stopHB := make(chan struct{})
	hbDone := make(chan struct{})
	interval := w.Heartbeat
	if interval == 0 {
		interval = g.TTL() / 3
	}
	if interval > 0 {
		go func() {
			defer close(hbDone)
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-stopHB:
					return
				case <-t.C:
					if err := w.Client.Heartbeat(g.Lease); errors.Is(err, ErrLeaseGone) {
						lost.Store(true)
						return
					}
				}
			}
		}()
	} else {
		close(hbDone)
	}

	opt := w.Options
	opt.Interrupt = func() bool {
		if lost.Load() {
			return true
		}
		if w.Interrupt != nil && w.Interrupt() {
			interrupted.Store(true)
			return true
		}
		return false
	}
	_, runErr := sweep.RunShardFileOn(backend, w.spec, g.File, g.Shard, g.Shards, opt)
	close(stopHB)
	<-hbDone

	if runErr != nil {
		// A fenced attempt surfaces as ErrLeaseGone from the write path
		// (or via the heartbeat); that is reassignment, not failure.
		if lost.Load() || errors.Is(runErr, ErrLeaseGone) {
			return false, nil
		}
		return false, runErr
	}
	if lost.Load() || interrupted.Load() {
		return false, nil // abandoned cleanly; no complete
	}
	res, err := w.Client.Complete(g.Lease)
	if errors.Is(err, ErrLeaseGone) {
		return false, nil // a rival finished first and this lease was fenced
	}
	if err != nil {
		return false, err
	}
	return res.Done, nil
}

// Run loops RunOnce until the sweep completes, tolerating up to
// MaxFailures consecutive errors with backed-off retries between them.
func (w *Worker) Run() error {
	max := w.MaxFailures
	if max <= 0 {
		max = DefaultMaxFailures
	}
	retry := w.Client.Retry.withDefaults()
	failures := 0
	for {
		done, err := w.RunOnce()
		if done {
			return nil
		}
		if err == nil {
			failures = 0
			continue
		}
		failures++
		if failures >= max || errors.Is(err, ErrPoisoned) {
			return err
		}
		w.sleep(retry.backoff(failures - 1))
	}
}
