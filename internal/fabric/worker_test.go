package fabric

import (
	"bytes"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"netdesign/internal/sweep"
)

// TestWorkersCompleteSweepOverHTTP runs a real fleet: a coordinator
// behind an HTTP server, one worker that acquires a shard and dies
// without completing or heartbeating it, and two healthy workers that
// drive the sweep to completion — including the dead worker's shard,
// reassigned after lease expiry. The merged table must match the serial
// oracle byte for byte.
func TestWorkersCompleteSweepOverHTTP(t *testing.T) {
	spec := testSpec()
	spec.Count = 12
	store := sweep.NewDirBackend(t.TempDir())
	c, err := New(Config{Spec: spec, Shards: 4, Store: store, LeaseTTL: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// The doomed worker: abandons its first grant at the first instance
	// poll and is never heard from again. Heartbeats are disabled so its
	// lease dies with it.
	doomed := &Worker{
		Client:    &Client{URL: srv.URL, HTTP: srv.Client()},
		ID:        "doomed",
		Options:   sweep.Options{Workers: 1},
		Interrupt: func() bool { return true },
		Heartbeat: -1,
	}
	if done, err := doomed.RunOnce(); done || err != nil {
		t.Fatalf("doomed RunOnce: done=%v err=%v", done, err)
	}
	if st := c.Status(); st.Leased != 1 {
		t.Fatalf("after doomed worker: %d leased shards, want 1", st.Leased)
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		w := &Worker{
			Client:  &Client{URL: srv.URL, HTTP: srv.Client()},
			ID:      string(rune('a' + i)),
			Options: sweep.Options{Workers: 1},
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Run()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	status, err := (&Client{URL: srv.URL, HTTP: srv.Client()}).Status()
	if err != nil {
		t.Fatal(err)
	}
	if !status.Done || status.Completed != 4 {
		t.Fatalf("status %+v, want 4 completed", status)
	}
	if status.Attempts < 5 {
		t.Fatalf("%d attempts, want at least 5 (doomed shard must be reassigned)", status.Attempts)
	}

	got, err := c.Merge()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sweep.RunSerial(spec)
	if err != nil {
		t.Fatal(err)
	}
	var gotText, wantText bytes.Buffer
	got.Render(&gotText)
	want.Render(&wantText)
	if gotText.String() != wantText.String() {
		t.Fatalf("fleet merge differs from serial oracle:\n%s\nvs\n%s", gotText.String(), wantText.String())
	}
}
