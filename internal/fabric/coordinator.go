package fabric

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"time"

	"netdesign/internal/sweep"
	"netdesign/internal/table"
)

// Store is what the coordinator needs from its durable checkpoint
// storage: the sweep Backend contract plus attempt promotion. DirBackend
// satisfies it; the coordinator's store is always local — workers reach
// it through the HTTP surface, never directly.
type Store interface {
	sweep.Backend
	Promote(src, dst string) error
	Remove(name string) error
}

// Config shapes a Coordinator.
type Config struct {
	Spec   sweep.Spec
	Shards int
	Store  Store

	// LeaseTTL is how long a lease survives without a heartbeat.
	// Default 15s.
	LeaseTTL time.Duration

	// StragglerFactor: a lease held longer than this multiple of the
	// median shard-completion time is a straggler eligible for
	// speculative re-execution. Default 3.
	StragglerFactor float64

	// StragglerMin floors the straggler age — no speculation before a
	// lease is at least this old, so short sweeps don't double-compute.
	// Default 10s.
	StragglerMin time.Duration

	// MaxAttempts caps concurrently active attempts per shard (primary +
	// speculative copies). Default 2.
	MaxAttempts int

	// Clock substitutes the time source; nil means time.Now. The chaos
	// harness injects a hand-advanced clock here, which is what makes
	// lease expiry and straggler detection deterministically testable.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = DefaultLeaseTTL
	}
	if c.StragglerFactor <= 0 {
		c.StragglerFactor = DefaultStragglerFactor
	}
	if c.StragglerMin <= 0 {
		c.StragglerMin = DefaultStragglerMin
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Lease lifecycle states.
const (
	leaseActive = iota
	leaseExpired
	leaseLost   // fenced because another attempt won the shard
	leaseWinner // completed first
	leaseSuperseded
)

type lease struct {
	id          int64
	shard       int
	file        string
	worker      string
	speculative bool
	granted     time.Time
	deadline    time.Time
	state       int
}

type shardState struct {
	done        bool
	attempts    []*lease // active attempts only
	attemptSeq  int      // attempts ever granted (names speculative files)
	records     int      // records known present in the canonical checkpoint
	completedIn time.Duration
}

// Coordinator owns one sweep manifest: the pinned spec, the shard plan,
// per-shard completion state, the lease table, and the server side of
// the checkpoint store. All state transitions happen under one lock and
// are driven purely by API calls and the injected clock — no background
// goroutines — which keeps the fault-injection harness deterministic.
type Coordinator struct {
	cfg  Config
	spec sweep.Spec

	mu        sync.Mutex
	shards    []shardState
	leases    map[int64]*lease
	nextLease int64
	attempts  int
	doneCount int
	poisoned  error
	doneCh    chan struct{}

	// ckpts is the server side of the checkpoint store: it owns the open
	// per-name writers and serves them over HTTP, consulting this
	// coordinator's lease table (fenceCheck) before every mutation.
	ckpts *storeServer

	costs costModel
}

// New builds a Coordinator over cfg.Store, pinning the spec and scanning
// existing canonical checkpoints so a restarted coordinator resumes
// where the store left off (completed shards stay completed, partial
// ones resume, recorded WallNS costs seed the scheduler).
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		return nil, fmt.Errorf("fabric: Config.Store is required")
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("fabric: shards %d < 1", cfg.Shards)
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Store.PinSpec(cfg.Spec); err != nil {
		return nil, err
	}
	if err := cfg.Store.CheckLayout(cfg.Shards); err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:     cfg,
		spec:    cfg.Spec,
		shards:  make([]shardState, cfg.Shards),
		leases:  map[int64]*lease{},
		doneCh:  make(chan struct{}),
	}
	c.ckpts = newStoreServer(cfg.Store)
	c.ckpts.fence = c.fenceCheck
	c.ckpts.onAppend = c.observeAppend
	c.costs.init(cfg.Spec.Count)
	for shard := range c.shards {
		recs, _, err := cfg.Store.ReadShard(sweep.ShardName(shard, cfg.Shards))
		if err != nil {
			return nil, fmt.Errorf("fabric: scanning shard %d: %w", shard, err)
		}
		c.shards[shard].records = len(recs)
		for _, rec := range recs {
			c.costs.observe(rec)
		}
		if len(recs) == c.shardSize(shard) {
			c.shards[shard].done = true
			c.doneCount++
		}
	}
	if c.doneCount == len(c.shards) {
		close(c.doneCh)
	}
	return c, nil
}

// shardSize is the number of instances shard owns under the round-robin
// partition.
func (c *Coordinator) shardSize(shard int) int {
	n := c.spec.Count / c.cfg.Shards
	if shard < c.spec.Count%c.cfg.Shards {
		n++
	}
	return n
}

// Done returns a channel closed when every shard has completed.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Err reports the poisoned state, if any.
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.poisoned
}

// expireLocked fences every lease whose deadline has passed. An expired
// primary returns its shard to the pending pool (the canonical
// checkpoint keeps the records it durably holds; the next attempt
// resumes it). Expired speculative attempts just vanish — their staging
// files are superseded garbage.
func (c *Coordinator) expireLocked(now time.Time) {
	for _, l := range c.leases {
		if l.state == leaseActive && now.After(l.deadline) {
			c.fenceLocked(l, leaseExpired)
		}
	}
}

// fenceLocked removes l from its shard's active attempts and closes any
// server-side writer it held open, so no further byte reaches its
// checkpoint.
func (c *Coordinator) fenceLocked(l *lease, state int) {
	l.state = state
	st := &c.shards[l.shard]
	for i, a := range st.attempts {
		if a == l {
			st.attempts = append(st.attempts[:i], st.attempts[i+1:]...)
			break
		}
	}
	c.ckpts.closeOwned(l.file, l.id)
}

// Acquire hands out the next lease: a primary attempt at the heaviest
// pending shard, else a speculative attempt at the most overdue
// straggler, else a wait hint. worker is a diagnostic label.
func (c *Coordinator) Acquire(worker string) (*AcquireResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.poisoned != nil {
		return nil, c.poisoned
	}
	now := c.cfg.Clock()
	c.expireLocked(now)
	if c.doneCount == len(c.shards) {
		return &AcquireResult{Done: true}, nil
	}
	if shard, ok := c.pickPendingLocked(); ok {
		return &AcquireResult{Grant: c.grantLocked(worker, shard, sweep.ShardName(shard, c.cfg.Shards), false, now)}, nil
	}
	if shard, ok := c.pickStragglerLocked(now); ok {
		st := &c.shards[shard]
		st.attemptSeq++
		name := speculativeName(st.attemptSeq, shard, c.cfg.Shards)
		return &AcquireResult{Grant: c.grantLocked(worker, shard, name, true, now)}, nil
	}
	return &AcquireResult{WaitMS: DefaultWaitHint.Milliseconds()}, nil
}

func (c *Coordinator) grantLocked(worker string, shard int, file string, speculative bool, now time.Time) *Grant {
	c.nextLease++
	c.attempts++
	st := &c.shards[shard]
	if !speculative {
		st.attemptSeq++
	}
	l := &lease{
		id:          c.nextLease,
		shard:       shard,
		file:        file,
		worker:      worker,
		speculative: speculative,
		granted:     now,
		deadline:    now.Add(c.cfg.LeaseTTL),
		state:       leaseActive,
	}
	c.leases[l.id] = l
	st.attempts = append(st.attempts, l)
	return &Grant{
		Lease:       l.id,
		Shard:       shard,
		Shards:      c.cfg.Shards,
		File:        file,
		TTLMS:       c.cfg.LeaseTTL.Milliseconds(),
		Speculative: speculative,
	}
}

// pickStragglerLocked finds the leased, unfinished shard whose oldest
// active attempt is furthest past the straggler threshold and still has
// attempt headroom.
func (c *Coordinator) pickStragglerLocked(now time.Time) (int, bool) {
	threshold := c.stragglerThresholdLocked()
	best, bestAge := -1, time.Duration(0)
	for shard := range c.shards {
		st := &c.shards[shard]
		if st.done || len(st.attempts) == 0 || len(st.attempts) >= c.cfg.MaxAttempts {
			continue
		}
		oldest := st.attempts[0].granted
		for _, a := range st.attempts[1:] {
			if a.granted.Before(oldest) {
				oldest = a.granted
			}
		}
		age := now.Sub(oldest)
		if age >= threshold && age > bestAge {
			best, bestAge = shard, age
		}
	}
	return best, best >= 0
}

// stragglerThresholdLocked derives the speculation cutoff from the
// median completion time of finished shards, floored at StragglerMin.
// With no completions yet there is no baseline, so nothing straggles.
func (c *Coordinator) stragglerThresholdLocked() time.Duration {
	var done []time.Duration
	for i := range c.shards {
		if c.shards[i].done && c.shards[i].completedIn > 0 {
			done = append(done, c.shards[i].completedIn)
		}
	}
	if len(done) == 0 {
		return time.Duration(1<<63 - 1)
	}
	sort.Slice(done, func(i, j int) bool { return done[i] < done[j] })
	med := done[len(done)/2]
	th := time.Duration(c.cfg.StragglerFactor * float64(med))
	if th < c.cfg.StragglerMin {
		th = c.cfg.StragglerMin
	}
	return th
}

// Heartbeat extends a lease's deadline. ErrLeaseGone means the worker
// has been fenced and must abandon the attempt.
func (c *Coordinator) Heartbeat(id int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock()
	c.expireLocked(now)
	l, ok := c.leases[id]
	if !ok || l.state != leaseActive {
		return ErrLeaseGone
	}
	l.deadline = now.Add(c.cfg.LeaseTTL)
	return nil
}

// Complete finishes an attempt. The coordinator verifies the attempt's
// checkpoint holds the shard's full index set, then either crowns it the
// winner (fencing rival attempts, promoting a speculative file to
// canonical) or — when a rival already won — verifies this copy is
// record-for-record bit-identical to the winner before discarding it.
func (c *Coordinator) Complete(id int64) (*CompleteResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock()
	c.expireLocked(now)
	l, ok := c.leases[id]
	if !ok {
		return nil, ErrLeaseGone
	}
	switch l.state {
	case leaseWinner:
		return &CompleteResult{Winner: true, Done: c.doneLocked()}, nil // idempotent retry
	case leaseSuperseded:
		return &CompleteResult{Winner: false, Done: c.doneLocked()}, nil
	case leaseExpired:
		return nil, ErrLeaseGone
	case leaseLost:
		// The attempt finished, but a rival's complete arrived first.
		// Before discarding the loser, hold it to the determinism
		// contract: both full copies of the shard must agree bit for bit.
		if err := c.verifyDuplicateLocked(l); err != nil {
			c.poisonLocked(err)
			return nil, err
		}
		l.state = leaseSuperseded
		return &CompleteResult{Winner: false, Done: c.doneLocked()}, nil
	}
	// Active: close its writer so every appended byte is flushed, then
	// verify completeness against the store.
	if err := c.ckpts.closeOwned(l.file, l.id); err != nil {
		return nil, err
	}
	recs, _, err := c.cfg.Store.ReadShard(l.file)
	if err != nil {
		return nil, err
	}
	if err := c.verifyShardSet(l.shard, recs); err != nil {
		// Incomplete or foreign: the worker lied or died weirdly. Fence
		// the attempt; the shard stays recoverable.
		c.fenceLocked(l, leaseExpired)
		return nil, fmt.Errorf("fabric: complete rejected: %w", err)
	}
	st := &c.shards[l.shard]
	if st.done {
		// A rival completed between this worker's last append and its
		// complete call; it was never fenced only because expiry hadn't
		// run. Same duplicate guard as leaseLost.
		if err := c.verifyDuplicateLocked(l); err != nil {
			c.poisonLocked(err)
			return nil, err
		}
		c.fenceLocked(l, leaseSuperseded)
		return &CompleteResult{Winner: false, Done: c.doneLocked()}, nil
	}
	// Crown the winner: fence rivals first (closing their writers), then
	// install the winning checkpoint as canonical.
	for _, rival := range append([]*lease(nil), st.attempts...) {
		if rival != l {
			c.fenceLocked(rival, leaseLost)
		}
	}
	canonical := sweep.ShardName(l.shard, c.cfg.Shards)
	if l.file != canonical {
		if err := c.cfg.Store.Promote(l.file, canonical); err != nil {
			return nil, fmt.Errorf("fabric: promoting winning attempt: %w", err)
		}
	}
	c.fenceLocked(l, leaseWinner)
	st.done = true
	st.records = len(recs)
	st.completedIn = now.Sub(l.granted)
	c.doneCount++
	if c.doneCount == len(c.shards) {
		close(c.doneCh)
	}
	return &CompleteResult{Winner: true, Done: c.doneLocked()}, nil
}

// doneLocked reports sweep completion; callers hold c.mu.
func (c *Coordinator) doneLocked() bool { return c.doneCount == len(c.shards) }

// verifyShardSet checks recs is exactly shard's index set.
func (c *Coordinator) verifyShardSet(shard int, recs []sweep.Record) error {
	want := c.shardSize(shard)
	if len(recs) != want {
		return fmt.Errorf("shard %d attempt holds %d records, want %d", shard, len(recs), want)
	}
	seen := map[int]bool{}
	for _, rec := range recs {
		if rec.Index >= c.spec.Count || sweep.ShardOf(rec.Index, c.cfg.Shards) != shard {
			return fmt.Errorf("shard %d attempt holds foreign index %d", shard, rec.Index)
		}
		if seen[rec.Index] {
			return fmt.Errorf("shard %d attempt duplicates index %d", shard, rec.Index)
		}
		seen[rec.Index] = true
	}
	return nil
}

// verifyDuplicateLocked compares a completed losing attempt against the
// canonical (winning) checkpoint: every record must be bit-identical
// after zeroing the wall-time stamp, which is execution state, not
// instance content. Any divergence is a determinism violation.
func (c *Coordinator) verifyDuplicateLocked(l *lease) error {
	canonical := sweep.ShardName(l.shard, c.cfg.Shards)
	wantRecs, _, err := c.cfg.Store.ReadShard(canonical)
	if err != nil {
		return err
	}
	gotRecs, _, err := c.cfg.Store.ReadShard(l.file)
	if err != nil {
		return err
	}
	want, err := encodeByIndex(wantRecs)
	if err != nil {
		return err
	}
	got, err := encodeByIndex(gotRecs)
	if err != nil {
		return err
	}
	if len(got) != len(want) {
		return fmt.Errorf("fabric: shard %d duplicate attempt holds %d records, winner %d", l.shard, len(got), len(want))
	}
	for idx, line := range want {
		if !bytes.Equal(got[idx], line) {
			return fmt.Errorf("fabric: shard %d diverged at index %d:\nwinner %s\nloser  %s", l.shard, idx, line, got[idx])
		}
	}
	// Identity held; the staging copy is redundant.
	if l.file != canonical {
		c.cfg.Store.Remove(l.file)
	}
	return nil
}

// encodeByIndex renders records (WallNS zeroed) keyed by index.
func encodeByIndex(recs []sweep.Record) (map[int][]byte, error) {
	m := make(map[int][]byte, len(recs))
	for _, rec := range recs {
		rec.WallNS = 0
		line, err := sweep.EncodeRecord(rec)
		if err != nil {
			return nil, err
		}
		m[rec.Index] = line
	}
	return m, nil
}

func (c *Coordinator) poisonLocked(err error) {
	if c.poisoned == nil {
		c.poisoned = fmt.Errorf("%w: %v", ErrPoisoned, err)
	}
}

// Merge assembles the completed sweep's table from the canonical
// checkpoints — byte-identical to the serial oracle, or an error.
func (c *Coordinator) Merge() (*table.Table, error) {
	c.mu.Lock()
	poisoned := c.poisoned
	done := c.doneCount == len(c.shards)
	c.mu.Unlock()
	if poisoned != nil {
		return nil, poisoned
	}
	if !done {
		return nil, fmt.Errorf("fabric: sweep incomplete")
	}
	return sweep.MergeOn(c.cfg.Store, c.spec, c.cfg.Shards)
}

// Status snapshots the manifest for operators and tests.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.cfg.Clock())
	st := Status{
		Scenario: c.spec.Scenario,
		Shards:   c.cfg.Shards,
		Done:     c.doneCount == len(c.shards),
		Attempts: c.attempts,
	}
	if c.poisoned != nil {
		st.Poisoned = c.poisoned.Error()
	}
	for shard := range c.shards {
		s := &c.shards[shard]
		info := ShardStatus{Shard: shard, Attempts: len(s.attempts), Records: s.records}
		switch {
		case s.done:
			info.State = "done"
			st.Completed++
		case len(s.attempts) > 0:
			info.State = "leased"
			st.Leased++
		default:
			info.State = "pending"
			st.Pending++
		}
		st.Records += s.records
		st.ShardInfo = append(st.ShardInfo, info)
	}
	return st
}
