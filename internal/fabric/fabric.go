// Package fabric is the distributed sweep layer: a coordinator that owns
// a sweep manifest (spec + shard plan + completion state) and hands out
// shard leases over HTTP to worker processes, promoted from cmd/sweep's
// single-host -shard i/m -spawn splitting.
//
// The design is fault-first. Workers die mid-shard, heartbeats vanish,
// the network partitions — and none of it may show in the merged table,
// which stays byte-identical to the serial oracle (the safety net
// inherited from internal/sweep's differential harness). The mechanisms:
//
//   - Leases. A worker acquires a shard lease, heartbeats it, and
//     completes it; a lease that misses heartbeats past its TTL expires
//     and the shard is reassigned. Every checkpoint write carries its
//     lease ID, and the coordinator fences writes from expired or
//     superseded leases — a zombie worker (alive but partitioned past its
//     TTL) cannot corrupt a checkpoint a successor has taken over.
//   - Checkpoints through the coordinator. Workers read and append shard
//     checkpoints over the same HTTP surface (an implementation of
//     sweep.Backend), so the coordinator's local store is the single
//     durable truth, fencing is enforceable, and the append-only JSONL
//     contract — fsync windows, torn-tail recovery — is exactly the one
//     the local-dir backend honors (pinned by the shared contract suite
//     in internal/sweep/backendtest).
//   - Speculative re-execution. A shard whose lease is held far past the
//     median completion time is a straggler: the coordinator grants a
//     second, speculative attempt that recomputes the shard into its own
//     staging checkpoint. First completed copy wins; the loser is
//     verified record-for-record bit-identical (WallNS excluded) against
//     the winner before being discarded — a speculative divergence is a
//     determinism bug and poisons the run loudly instead of merging
//     silently.
//   - Adaptive scheduling. Pending shards are granted heaviest-first,
//     weighted by recorded per-record WallNS costs (nearest observed
//     index, falling back to the running mean) instead of raw instance
//     count, so a resumed or cost-skewed sweep keeps its stragglers
//     short.
//   - Retries. All worker→coordinator calls retry transient failures
//     (transport errors, 5xx) with exponential backoff and jitter;
//     checkpoint appends are idempotent (offset-checked), so a retry
//     after a lost response cannot double-append.
//
// Deterministic fault injection for all of the above lives in
// internal/fabric/chaos. cmd/sweepd runs the coordinator; cmd/sweep
// -coordinator runs a worker.
package fabric

import (
	"errors"
	"fmt"
	"time"
)

// Defaults for Config knobs left zero.
const (
	DefaultLeaseTTL        = 15 * time.Second
	DefaultStragglerFactor = 3.0
	DefaultStragglerMin    = 10 * time.Second
	DefaultMaxAttempts     = 2
	DefaultWaitHint        = 500 * time.Millisecond
)

// Sentinel errors of the worker→coordinator protocol.
var (
	// ErrLeaseGone: the lease was expired, fenced, or never existed; the
	// worker must abandon the attempt (its checkpoint writes are already
	// being rejected) and acquire fresh work.
	ErrLeaseGone = errors.New("fabric: lease gone")

	// ErrPoisoned: the coordinator detected a determinism violation (two
	// completed attempts of one shard disagreed) and refuses to hand out
	// further work; the run must not be merged.
	ErrPoisoned = errors.New("fabric: sweep poisoned by attempt divergence")
)

// Grant is one shard lease as handed to a worker.
type Grant struct {
	Lease       int64  `json:"lease"`
	Shard       int    `json:"shard"`
	Shards      int    `json:"shards"`
	File        string `json:"file"` // checkpoint name this attempt owns
	TTLMS       int64  `json:"ttl_ms"`
	Speculative bool   `json:"speculative"`
}

// TTL returns the lease's heartbeat deadline window.
func (g *Grant) TTL() time.Duration { return time.Duration(g.TTLMS) * time.Millisecond }

// AcquireResult is the coordinator's answer to an acquire call: exactly
// one of Done, WaitMS or Grant is meaningful.
type AcquireResult struct {
	Done   bool   `json:"done,omitempty"`
	WaitMS int64  `json:"wait_ms,omitempty"`
	Grant  *Grant `json:"grant,omitempty"`
}

// Wait returns the coordinator's back-off hint as a duration.
func (r *AcquireResult) Wait() time.Duration { return time.Duration(r.WaitMS) * time.Millisecond }

// CompleteResult reports how a completed attempt landed: the winner of
// its shard, or superseded by an identical earlier copy. Done piggybacks
// the sweep's completion so the worker that finishes the final shard
// learns it immediately — a -once coordinator may exit before that
// worker's next Acquire could ask.
type CompleteResult struct {
	Winner bool `json:"winner"`
	Done   bool `json:"done,omitempty"`
}

// appendResponse acknowledges a checkpoint append with the new length,
// which doubles as the idempotency cursor for retries.
type appendResponse struct {
	Len int64 `json:"len"`
}

// Status is the coordinator's observable state, served on /fabric/v1/status.
type Status struct {
	Scenario  string        `json:"scenario"`
	Shards    int           `json:"shards"`
	Done      bool          `json:"done"`
	Poisoned  string        `json:"poisoned,omitempty"`
	Pending   int           `json:"pending"`
	Leased    int           `json:"leased"`
	Completed int           `json:"completed"`
	Records   int           `json:"records"`
	Attempts  int           `json:"attempts"` // leases ever granted
	ShardInfo []ShardStatus `json:"shard_info,omitempty"`
}

// ShardStatus is one shard's line in Status.
type ShardStatus struct {
	Shard    int    `json:"shard"`
	State    string `json:"state"` // pending | leased | done
	Attempts int    `json:"attempts"`
	Records  int    `json:"records"`
}

// speculativeName is the staging checkpoint of attempt seq at a shard —
// deliberately outside the shard-*-of-*.jsonl layout glob so stale
// attempts can never be mistaken for canonical checkpoints by a merge.
func speculativeName(seq, shard, shards int) string {
	return fmt.Sprintf("attempt-%03d-shard-%03d-of-%03d.jsonl", seq, shard, shards)
}
