package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"sync"
	"time"

	"netdesign/internal/sweep"
)

// Retry is the backoff policy of every worker→coordinator call:
// transport errors and 5xx responses are retried with capped exponential
// backoff and full jitter; 4xx responses are answers, not failures, and
// return immediately. Sleep and Rand are injectable so the chaos harness
// can heal partitions with recorded, zero-duration sleeps and keep runs
// deterministic.
type Retry struct {
	Attempts int           // total tries; <= 0 means DefaultRetryAttempts
	Base     time.Duration // first backoff; <= 0 means DefaultRetryBase
	Cap      time.Duration // backoff ceiling; <= 0 means DefaultRetryCap
	Sleep    func(time.Duration)
	Rand     func() float64 // jitter source in [0,1)
}

// Defaults for Retry knobs left zero.
const (
	DefaultRetryAttempts = 8
	DefaultRetryBase     = 25 * time.Millisecond
	DefaultRetryCap      = 1 * time.Second
)

func (r Retry) withDefaults() Retry {
	if r.Attempts <= 0 {
		r.Attempts = DefaultRetryAttempts
	}
	if r.Base <= 0 {
		r.Base = DefaultRetryBase
	}
	if r.Cap <= 0 {
		r.Cap = DefaultRetryCap
	}
	if r.Sleep == nil {
		r.Sleep = time.Sleep
	}
	if r.Rand == nil {
		r.Rand = rand.Float64
	}
	return r
}

// backoff is the wait before try attempt+1: min(Cap, Base·2^attempt)
// scaled by a jitter in [0.5, 1) so a fleet of workers retrying the same
// outage doesn't stampede the coordinator in lockstep.
func (r Retry) backoff(attempt int) time.Duration {
	d := r.Base
	for i := 0; i < attempt && d < r.Cap; i++ {
		d *= 2
	}
	if d > r.Cap {
		d = r.Cap
	}
	return time.Duration((0.5 + 0.5*r.Rand()) * float64(d))
}

// Client speaks the coordinator's HTTP API. The zero HTTP and Retry
// fields get http.DefaultClient and default backoff.
type Client struct {
	URL   string // coordinator base URL, no trailing slash
	HTTP  *http.Client
	Retry Retry
}

func (cl *Client) httpClient() *http.Client {
	if cl.HTTP != nil {
		return cl.HTTP
	}
	return http.DefaultClient
}

// do issues one API call under the retry policy and returns the final
// status and body. err is non-nil only when every attempt failed
// transiently; any 4xx comes back as a status for the caller to map.
func (cl *Client) do(method, path string, q url.Values, body []byte) (int, []byte, error) {
	r := cl.Retry.withDefaults()
	u := cl.URL + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	var lastErr error
	for attempt := 0; attempt < r.Attempts; attempt++ {
		if attempt > 0 {
			r.Sleep(r.backoff(attempt - 1))
		}
		req, err := http.NewRequest(method, u, bytes.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		resp, err := cl.httpClient().Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			lastErr = rerr
			continue
		}
		if resp.StatusCode >= 500 {
			lastErr = fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(data))
			continue
		}
		return resp.StatusCode, data, nil
	}
	return 0, nil, fmt.Errorf("fabric: %s %s failed after %d attempts: %w", method, path, r.Attempts, lastErr)
}

func statusError(op string, status int, body []byte) error {
	return fmt.Errorf("fabric: %s: HTTP %d: %s", op, status, bytes.TrimSpace(body))
}

// Acquire asks the coordinator for work.
func (cl *Client) Acquire(worker string) (*AcquireResult, error) {
	body, err := json.Marshal(acquireRequest{Worker: worker})
	if err != nil {
		return nil, err
	}
	st, data, err := cl.do(http.MethodPost, "/fabric/v1/acquire", nil, body)
	if err != nil {
		return nil, err
	}
	switch st {
	case http.StatusOK:
		var res AcquireResult
		if err := json.Unmarshal(data, &res); err != nil {
			return nil, fmt.Errorf("fabric: acquire response: %w", err)
		}
		return &res, nil
	case http.StatusConflict:
		return nil, fmt.Errorf("%w: %s", ErrPoisoned, bytes.TrimSpace(data))
	default:
		return nil, statusError("acquire", st, data)
	}
}

// Heartbeat extends a lease. ErrLeaseGone means the attempt is fenced.
func (cl *Client) Heartbeat(lease int64) error {
	body, err := json.Marshal(leaseRequest{Lease: lease})
	if err != nil {
		return err
	}
	st, data, err := cl.do(http.MethodPost, "/fabric/v1/heartbeat", nil, body)
	if err != nil {
		return err
	}
	switch st {
	case http.StatusNoContent:
		return nil
	case http.StatusGone:
		return ErrLeaseGone
	default:
		return statusError("heartbeat", st, data)
	}
}

// Complete reports a finished attempt.
func (cl *Client) Complete(lease int64) (*CompleteResult, error) {
	body, err := json.Marshal(leaseRequest{Lease: lease})
	if err != nil {
		return nil, err
	}
	st, data, err := cl.do(http.MethodPost, "/fabric/v1/complete", nil, body)
	if err != nil {
		return nil, err
	}
	switch st {
	case http.StatusOK:
		var res CompleteResult
		if err := json.Unmarshal(data, &res); err != nil {
			return nil, fmt.Errorf("fabric: complete response: %w", err)
		}
		return &res, nil
	case http.StatusGone:
		return nil, ErrLeaseGone
	case http.StatusConflict:
		return nil, fmt.Errorf("%w: %s", ErrPoisoned, bytes.TrimSpace(data))
	default:
		return nil, statusError("complete", st, data)
	}
}

// Status fetches the coordinator's manifest snapshot.
func (cl *Client) Status() (Status, error) {
	st, data, err := cl.do(http.MethodGet, "/fabric/v1/status", nil, nil)
	if err != nil {
		return Status{}, err
	}
	if st != http.StatusOK {
		return Status{}, statusError("status", st, data)
	}
	var s Status
	if err := json.Unmarshal(data, &s); err != nil {
		return Status{}, fmt.Errorf("fabric: status response: %w", err)
	}
	return s, nil
}

// Backend returns the coordinator-served checkpoint store as a
// sweep.Backend, with every mutating call carrying lease (0 for an
// unfenced store). It honors the identical contract DirBackend does —
// pinned by running internal/sweep/backendtest against it.
func (cl *Client) Backend(lease int64) sweep.Backend {
	return &httpBackend{cl: cl, lease: lease}
}

type httpBackend struct {
	cl    *Client
	lease int64
}

func (b *httpBackend) leaseQuery(q url.Values) url.Values {
	if b.lease != 0 {
		q.Set("lease", strconv.FormatInt(b.lease, 10))
	}
	return q
}

func (b *httpBackend) PinSpec(spec sweep.Spec) error {
	var buf bytes.Buffer
	if err := sweep.WriteSpec(&buf, spec); err != nil {
		return err
	}
	st, data, err := b.cl.do(http.MethodPut, "/fabric/v1/spec", nil, buf.Bytes())
	if err != nil {
		return err
	}
	if st != http.StatusNoContent {
		return statusError("pin spec", st, data)
	}
	return nil
}

func (b *httpBackend) LoadSpec() (sweep.Spec, error) {
	st, data, err := b.cl.do(http.MethodGet, "/fabric/v1/spec", nil, nil)
	if err != nil {
		return sweep.Spec{}, err
	}
	switch st {
	case http.StatusOK:
		return sweep.ParseSpec(bytes.NewReader(data))
	case http.StatusNotFound:
		return sweep.Spec{}, fmt.Errorf("fabric: no spec pinned: %w", os.ErrNotExist)
	default:
		return sweep.Spec{}, statusError("load spec", st, data)
	}
}

func (b *httpBackend) CheckLayout(shards int) error {
	q := url.Values{"shards": {strconv.Itoa(shards)}}
	st, data, err := b.cl.do(http.MethodGet, "/fabric/v1/layout", q, nil)
	if err != nil {
		return err
	}
	if st != http.StatusNoContent {
		return statusError("layout", st, data)
	}
	return nil
}

func (b *httpBackend) ReadShard(name string) ([]sweep.Record, int64, error) {
	q := url.Values{"name": {name}}
	st, data, err := b.cl.do(http.MethodGet, "/fabric/v1/ckpt", q, nil)
	if err != nil {
		return nil, 0, err
	}
	if st != http.StatusOK {
		return nil, 0, statusError("read "+name, st, data)
	}
	// The server sends only the decodable prefix, but decoding locally
	// (torn tails tolerated) keeps the client honest about what validLen
	// means even against a misbehaving server.
	return sweep.DecodeCheckpoint(data)
}

func (b *httpBackend) OpenShard(name string, validLen int64, syncEvery int) (sweep.ShardWriter, error) {
	q := b.leaseQuery(url.Values{
		"name": {name},
		"len":  {strconv.FormatInt(validLen, 10)},
		"sync": {strconv.Itoa(syncEvery)},
	})
	st, data, err := b.cl.do(http.MethodPost, "/fabric/v1/ckpt/open", q, nil)
	if err != nil {
		return nil, err
	}
	switch st {
	case http.StatusNoContent:
		return &httpShardWriter{b: b, name: name, off: validLen}, nil
	case http.StatusGone:
		return nil, ErrLeaseGone
	default:
		return nil, statusError("open "+name, st, data)
	}
}

// httpShardWriter appends records one offset-checked request at a time.
// The offset makes appends idempotent: a retry of a request whose
// response was lost is recognized server-side (the bytes are already at
// off) and acknowledged without double-appending, so the retry policy is
// safe on the write path. The engine's worker goroutines share one
// writer, hence the lock.
type httpShardWriter struct {
	b    *httpBackend
	name string

	mu  sync.Mutex
	off int64
}

func (w *httpShardWriter) Append(rec sweep.Record) error {
	line, err := sweep.EncodeRecord(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	q := w.b.leaseQuery(url.Values{
		"name": {w.name},
		"off":  {strconv.FormatInt(w.off, 10)},
	})
	st, data, err := w.b.cl.do(http.MethodPost, "/fabric/v1/ckpt/append", q, line)
	if err != nil {
		return err
	}
	switch st {
	case http.StatusOK:
		var res appendResponse
		if err := json.Unmarshal(data, &res); err != nil {
			return fmt.Errorf("fabric: append response: %w", err)
		}
		w.off = res.Len
		return nil
	case http.StatusGone:
		return ErrLeaseGone
	default:
		return statusError("append "+w.name, st, data)
	}
}

func (w *httpShardWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	q := w.b.leaseQuery(url.Values{"name": {w.name}})
	st, data, err := w.b.cl.do(http.MethodPost, "/fabric/v1/ckpt/close", q, nil)
	if err != nil {
		return err
	}
	switch st {
	case http.StatusNoContent:
		return nil
	case http.StatusGone:
		return ErrLeaseGone
	default:
		return statusError("close "+w.name, st, data)
	}
}
