package fabric

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"

	"netdesign/internal/sweep"
)

// storeWriter is one open server-side checkpoint writer: the real
// sweep.ShardWriter (with its fsync window) plus the lease that owns it
// and the acknowledged byte length, which is the append idempotency
// cursor.
type storeWriter struct {
	lease int64
	off   int64
	w     sweep.ShardWriter
}

// storeServer serves a Store over HTTP: spec pin/load, layout check,
// checkpoint read, and the open/append/close writer protocol. The
// durable files, fsync windows and torn-tail semantics are all the
// Store's — this layer only adds transport, per-name writer ownership,
// and (when fence is set) lease fencing: every mutating call names its
// lease, and a lease the coordinator has expired or superseded gets 410
// before a single byte lands. onAppend, when set, observes every
// accepted record (the coordinator feeds its cost model with it); it is
// called without locks held.
type storeServer struct {
	store    Store
	fence    func(lease int64, name string) error
	onAppend func(rec sweep.Record)

	mu      sync.Mutex
	writers map[string]*storeWriter
}

func newStoreServer(store Store) *storeServer {
	return &storeServer{store: store, writers: map[string]*storeWriter{}}
}

// closeOwned closes the open writer of name if lease owns it, flushing
// its sync window. Closing a name with no writer (or someone else's) is
// a no-op: fencing and completion paths race benignly.
func (ss *storeServer) closeOwned(name string, lease int64) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	sw, ok := ss.writers[name]
	if !ok || sw.lease != lease {
		return nil
	}
	delete(ss.writers, name)
	return sw.w.Close()
}

// checkFence applies the coordinator's lease check, writing the 410 that
// tells a zombie worker its attempt is over. With no fence installed
// (bare store, as in the backend contract tests) every call passes.
func (ss *storeServer) checkFence(w http.ResponseWriter, r *http.Request, name string) bool {
	if ss.fence == nil {
		return true
	}
	lease, _ := strconv.ParseInt(r.URL.Query().Get("lease"), 10, 64)
	if err := ss.fence(lease, name); err != nil {
		http.Error(w, err.Error(), http.StatusGone)
		return false
	}
	return true
}

func (ss *storeServer) register(mux *http.ServeMux) {
	mux.HandleFunc("/fabric/v1/spec", ss.handleSpec)
	mux.HandleFunc("/fabric/v1/layout", ss.handleLayout)
	mux.HandleFunc("/fabric/v1/ckpt", ss.handleRead)
	mux.HandleFunc("/fabric/v1/ckpt/open", ss.handleOpen)
	mux.HandleFunc("/fabric/v1/ckpt/append", ss.handleAppend)
	mux.HandleFunc("/fabric/v1/ckpt/close", ss.handleClose)
}

func (ss *storeServer) handleSpec(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		spec, err := ss.store.LoadSpec()
		if errors.Is(err, os.ErrNotExist) {
			http.Error(w, "no spec pinned", http.StatusNotFound)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		var buf bytes.Buffer
		if err := sweep.WriteSpec(&buf, spec); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(buf.Bytes())
	case http.MethodPut:
		spec, err := sweep.ParseSpec(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Pin mismatch is a client error — a worker trying to extend the
		// store with a different sweep — and must not be retried.
		if err := ss.store.PinSpec(spec); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "GET or PUT", http.StatusMethodNotAllowed)
	}
}

func (ss *storeServer) handleLayout(w http.ResponseWriter, r *http.Request) {
	shards, err := strconv.Atoi(r.URL.Query().Get("shards"))
	if err != nil || shards < 1 {
		http.Error(w, "bad shards", http.StatusBadRequest)
		return
	}
	if err := ss.store.CheckLayout(shards); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleRead serves the decodable prefix of a checkpoint, re-encoded.
// Since every stored line originates from EncodeRecord, the re-encoding
// is byte-identical to the on-disk prefix: the length the client decodes
// is exactly the validLen a later open may truncate to. A torn tail
// stays server-side and is simply not sent; mid-file corruption is an
// unprocessable store, not a transient failure.
func (ss *storeServer) handleRead(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	recs, _, err := ss.store.ReadShard(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	var buf bytes.Buffer
	for _, rec := range recs {
		line, err := sweep.EncodeRecord(rec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	w.Write(buf.Bytes())
}

func (ss *storeServer) handleOpen(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("name")
	validLen, err := strconv.ParseInt(q.Get("len"), 10, 64)
	if name == "" || err != nil || validLen < 0 {
		http.Error(w, "bad name or len", http.StatusBadRequest)
		return
	}
	syncEvery, err := strconv.Atoi(q.Get("sync"))
	if err != nil || syncEvery < 0 {
		http.Error(w, "bad sync", http.StatusBadRequest)
		return
	}
	if !ss.checkFence(w, r, name) {
		return
	}
	lease, _ := strconv.ParseInt(q.Get("lease"), 10, 64)
	ss.mu.Lock()
	defer ss.mu.Unlock()
	// A reopen supersedes any writer left behind by a dead client of the
	// same checkpoint; its unsynced window is flushed by Close first.
	if prev, ok := ss.writers[name]; ok {
		delete(ss.writers, name)
		if err := prev.w.Close(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	sw, err := ss.store.OpenShard(name, validLen, syncEvery)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	ss.writers[name] = &storeWriter{lease: lease, off: validLen, w: sw}
	w.WriteHeader(http.StatusNoContent)
}

func (ss *storeServer) handleAppend(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("name")
	off, perr := strconv.ParseInt(q.Get("off"), 10, 64)
	if name == "" || perr != nil || off < 0 {
		http.Error(w, "bad name or off", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Decode every line before appending any: a request torn in transit
	// (or a mid-write kill upstream of it) is rejected whole, so the
	// durable checkpoint only ever grows by fully formed records and the
	// record boundary the torn-tail recovery depends on is preserved.
	recs, lens, err := decodeAppendBody(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !ss.checkFence(w, r, name) {
		return
	}
	lease, _ := strconv.ParseInt(q.Get("lease"), 10, 64)
	ss.mu.Lock()
	sw, ok := ss.writers[name]
	if !ok {
		ss.mu.Unlock()
		http.Error(w, "no open writer for "+name, http.StatusConflict)
		return
	}
	if sw.lease != lease {
		ss.mu.Unlock()
		http.Error(w, ErrLeaseGone.Error(), http.StatusGone)
		return
	}
	switch {
	case off == sw.off:
		for i, rec := range recs {
			if err := sw.w.Append(rec); err != nil {
				sw.off += sumInt64(lens[:i])
				ss.mu.Unlock()
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		sw.off += sumInt64(lens)
	case off < sw.off && sw.off-off == int64(len(body)):
		// Retry of an append whose response was lost: already applied.
	default:
		ss.mu.Unlock()
		http.Error(w, fmt.Sprintf("append at %d, writer at %d", off, sw.off), http.StatusConflict)
		return
	}
	newLen := sw.off
	ss.mu.Unlock()
	if ss.onAppend != nil {
		for _, rec := range recs {
			ss.onAppend(rec)
		}
	}
	json.NewEncoder(w).Encode(appendResponse{Len: newLen})
}

func (ss *storeServer) handleClose(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if !ss.checkFence(w, r, name) {
		return
	}
	lease, _ := strconv.ParseInt(r.URL.Query().Get("lease"), 10, 64)
	ss.mu.Lock()
	sw, ok := ss.writers[name]
	if ok && sw.lease != lease {
		ss.mu.Unlock()
		http.Error(w, ErrLeaseGone.Error(), http.StatusGone)
		return
	}
	if ok {
		delete(ss.writers, name)
	}
	ss.mu.Unlock()
	if ok {
		if err := sw.w.Close(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// decodeAppendBody splits a newline-terminated JSONL body into records,
// returning each line's wire length (record + newline). Any undecodable
// or unterminated line rejects the whole body.
func decodeAppendBody(body []byte) ([]sweep.Record, []int64, error) {
	if len(body) == 0 || body[len(body)-1] != '\n' {
		return nil, nil, fmt.Errorf("fabric: append body not newline-terminated")
	}
	var recs []sweep.Record
	var lens []int64
	for off := 0; off < len(body); {
		nl := bytes.IndexByte(body[off:], '\n')
		rec, err := sweep.DecodeRecord(body[off : off+nl])
		if err != nil {
			return nil, nil, err
		}
		recs = append(recs, rec)
		lens = append(lens, int64(nl)+1)
		off += nl + 1
	}
	return recs, lens, nil
}

func sumInt64(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

// fenceCheck is the coordinator's lease gate on the checkpoint store: a
// mutating call is admitted only under an active lease that owns the
// named checkpoint. It is installed as the storeServer's fence and runs
// lazy expiry first, so a zombie past its TTL is fenced by its own
// write, not by a background sweep.
func (c *Coordinator) fenceCheck(lease int64, name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.cfg.Clock())
	l, ok := c.leases[lease]
	if !ok || l.state != leaseActive || l.file != name {
		return ErrLeaseGone
	}
	return nil
}

// observeAppend feeds every accepted checkpoint record into the cost
// model, keeping straggler estimates current while shards run.
func (c *Coordinator) observeAppend(rec sweep.Record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.costs.observe(rec)
}

// leaseRequest and acquireRequest are the tiny JSON bodies of the
// coordination calls.
type leaseRequest struct {
	Lease int64 `json:"lease"`
}

type acquireRequest struct {
	Worker string `json:"worker"`
}

// Handler returns the coordinator's full HTTP surface: the coordination
// API (acquire/heartbeat/complete/status) plus the fenced checkpoint
// store, all under /fabric/v1/.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fabric/v1/acquire", c.handleAcquire)
	mux.HandleFunc("/fabric/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/fabric/v1/complete", c.handleComplete)
	mux.HandleFunc("/fabric/v1/status", c.handleStatus)
	c.ckpts.register(mux)
	return mux
}

func (c *Coordinator) handleAcquire(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST", http.StatusMethodNotAllowed)
		return
	}
	var req acquireRequest
	json.NewDecoder(r.Body).Decode(&req)
	res, err := c.Acquire(req.Worker)
	if err != nil {
		// Poisoned: a permanent condition, reported as a conflict so
		// clients stop rather than retry.
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	json.NewEncoder(w).Encode(res)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST", http.StatusMethodNotAllowed)
		return
	}
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := c.Heartbeat(req.Lease); err != nil {
		http.Error(w, err.Error(), http.StatusGone)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST", http.StatusMethodNotAllowed)
		return
	}
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, err := c.Complete(req.Lease)
	switch {
	case errors.Is(err, ErrLeaseGone):
		http.Error(w, err.Error(), http.StatusGone)
	case errors.Is(err, ErrPoisoned):
		http.Error(w, err.Error(), http.StatusConflict)
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	default:
		json.NewEncoder(w).Encode(res)
	}
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	json.NewEncoder(w).Encode(c.Status())
}
