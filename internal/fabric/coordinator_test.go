package fabric

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"netdesign/internal/sweep"
)

func testSpec() sweep.Spec {
	return sweep.Spec{Scenario: "enforce", Seed: 17, Count: 6, Size: 5, Params: map[string]float64{"spread": 3}}
}

// testCoordinator builds a coordinator over a temp DirBackend with a
// hand-advanced clock. Tests drive time explicitly; nothing ticks on its
// own.
func testCoordinator(t *testing.T, cfg Config) (*Coordinator, *time.Time, Store) {
	t.Helper()
	now := time.Unix(1_000_000, 0)
	store := sweep.NewDirBackend(t.TempDir())
	if cfg.Spec.Scenario == "" {
		cfg.Spec = testSpec()
	}
	if cfg.Shards == 0 {
		cfg.Shards = 2
	}
	cfg.Store = store
	cfg.Clock = func() time.Time { return now }
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, &now, store
}

// mustGrant acquires and fails the test unless a grant comes back.
func mustGrant(t *testing.T, c *Coordinator, worker string) *Grant {
	t.Helper()
	res, err := c.Acquire(worker)
	if err != nil {
		t.Fatalf("acquire %s: %v", worker, err)
	}
	if res.Grant == nil {
		t.Fatalf("acquire %s: no grant (done=%v wait=%d)", worker, res.Done, res.WaitMS)
	}
	return res.Grant
}

// runGrant computes the granted shard straight into the coordinator's
// store (bypassing HTTP — storage semantics are covered by the contract
// suite).
func runGrant(t *testing.T, c *Coordinator, store Store, g *Grant) {
	t.Helper()
	if _, err := sweep.RunShardFileOn(store, c.spec, g.File, g.Shard, g.Shards, sweep.Options{Workers: 1}); err != nil {
		t.Fatalf("running shard %d into %s: %v", g.Shard, g.File, err)
	}
}

func TestLeaseExpiryReassignsShard(t *testing.T) {
	c, now, _ := testCoordinator(t, Config{LeaseTTL: 10 * time.Second})
	g1 := mustGrant(t, c, "w1")
	g2 := mustGrant(t, c, "w2")
	if g1.Shard == g2.Shard {
		t.Fatalf("both grants on shard %d", g1.Shard)
	}
	// Everything leased, nothing straggling: third worker is told to wait.
	res, err := c.Acquire("w3")
	if err != nil || res.Grant != nil || res.Done {
		t.Fatalf("third acquire: res=%+v err=%v, want wait hint", res, err)
	}
	if res.WaitMS <= 0 {
		t.Fatal("wait hint missing")
	}
	// Heartbeats inside the TTL keep a lease alive indefinitely.
	*now = now.Add(9 * time.Second)
	if err := c.Heartbeat(g1.Lease); err != nil {
		t.Fatalf("heartbeat within TTL: %v", err)
	}
	*now = now.Add(9 * time.Second)
	if err := c.Heartbeat(g1.Lease); err != nil {
		t.Fatalf("heartbeat after extension: %v", err)
	}
	// g2 never heartbeat: 18s elapsed > 10s TTL, so it is gone and its
	// shard is pending again.
	if err := c.Heartbeat(g2.Lease); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("heartbeat on expired lease: %v, want ErrLeaseGone", err)
	}
	g3 := mustGrant(t, c, "w3")
	if g3.Shard != g2.Shard {
		t.Fatalf("reassigned shard %d, want %d", g3.Shard, g2.Shard)
	}
	// The zombie's checkpoint writes are fenced even though it is alive.
	if err := c.fenceCheck(g2.Lease, g2.File); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("zombie write admitted: %v", err)
	}
	if err := c.fenceCheck(g3.Lease, g3.File); err != nil {
		t.Fatalf("successor write fenced: %v", err)
	}
}

func TestCompleteRejectsIncompleteShard(t *testing.T) {
	c, _, store := testCoordinator(t, Config{})
	g := mustGrant(t, c, "w1")
	// One record of the shard, not all of them.
	if _, err := sweep.RunShardFileOn(store, c.spec, g.File, g.Shard, g.Shards, sweep.Options{Workers: 1, StopAfter: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Complete(g.Lease); err == nil {
		t.Fatal("incomplete shard completed")
	}
	// The lease is fenced but the shard stays recoverable.
	g2 := mustGrant(t, c, "w2")
	if g2.Shard != g.Shard {
		t.Fatalf("shard %d granted, want recovered %d", g2.Shard, g.Shard)
	}
}

func TestSweepCompletesAndMergesIdentical(t *testing.T) {
	c, now, store := testCoordinator(t, Config{})
	for i := 0; i < 2; i++ {
		g := mustGrant(t, c, "w")
		runGrant(t, c, store, g)
		*now = now.Add(time.Second)
		res, err := c.Complete(g.Lease)
		if err != nil || !res.Winner {
			t.Fatalf("complete shard %d: res=%+v err=%v", g.Shard, res, err)
		}
	}
	res, err := c.Acquire("w")
	if err != nil || !res.Done {
		t.Fatalf("acquire after completion: res=%+v err=%v, want done", res, err)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("Done channel not closed")
	}
	got, err := c.Merge()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sweep.RunSerial(c.spec)
	if err != nil {
		t.Fatal(err)
	}
	var gotText, wantText bytes.Buffer
	got.Render(&gotText)
	want.Render(&wantText)
	if gotText.String() != wantText.String() {
		t.Fatalf("fabric merge differs from serial oracle:\n%s\nvs\n%s", gotText.String(), wantText.String())
	}
}

// completeOneShard drives one shard to completion, advancing the clock
// by took so the coordinator has a completion-time baseline.
func completeOneShard(t *testing.T, c *Coordinator, store Store, now *time.Time, took time.Duration) *Grant {
	t.Helper()
	g := mustGrant(t, c, "fast")
	runGrant(t, c, store, g)
	*now = now.Add(took)
	if res, err := c.Complete(g.Lease); err != nil || !res.Winner {
		t.Fatalf("complete: res=%+v err=%v", res, err)
	}
	return g
}

func TestStragglerSpeculationWinnerPromoted(t *testing.T) {
	c, now, store := testCoordinator(t, Config{
		LeaseTTL:        time.Hour, // the straggler is alive, just slow
		StragglerMin:    2 * time.Second,
		StragglerFactor: 3,
	})
	gSlow := mustGrant(t, c, "slow")
	completeOneShard(t, c, store, now, time.Second) // median = 1s → threshold = 3s
	// Not past the threshold yet: no speculation.
	*now = now.Add(1500 * time.Millisecond) // gSlow age: 2.5s
	if res, _ := c.Acquire("spec"); res.Grant != nil {
		t.Fatalf("speculative grant before threshold: %+v", res.Grant)
	}
	*now = now.Add(time.Second) // gSlow age: 3.5s
	gSpec := mustGrant(t, c, "spec")
	if !gSpec.Speculative || gSpec.Shard != gSlow.Shard {
		t.Fatalf("grant %+v, want speculative copy of shard %d", gSpec, gSlow.Shard)
	}
	if gSpec.File == gSlow.File || !strings.HasPrefix(gSpec.File, "attempt-") {
		t.Fatalf("speculative file %q collides with primary %q", gSpec.File, gSlow.File)
	}
	// MaxAttempts caps the copies: no third attempt.
	if res, _ := c.Acquire("spec2"); res.Grant != nil {
		t.Fatalf("third attempt granted: %+v", res.Grant)
	}
	// The speculative copy finishes first and wins; its staging file is
	// promoted to the canonical checkpoint.
	runGrant(t, c, store, gSpec)
	res, err := c.Complete(gSpec.Lease)
	if err != nil || !res.Winner {
		t.Fatalf("speculative complete: res=%+v err=%v", res, err)
	}
	recs, _, err := store.ReadShard(sweep.ShardName(gSlow.Shard, 2))
	if err != nil || len(recs) == 0 {
		t.Fatalf("canonical checkpoint after promotion: %d recs, %v", len(recs), err)
	}
	// The fenced primary learns it lost on its next call.
	if err := c.Heartbeat(gSlow.Lease); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("loser heartbeat: %v, want ErrLeaseGone", err)
	}
	if _, err := c.Merge(); err != nil {
		t.Fatalf("merge after speculative win: %v", err)
	}
}

func TestDuplicateLoserVerifiedAndDiscarded(t *testing.T) {
	c, now, store := testCoordinator(t, Config{
		LeaseTTL:        time.Hour,
		StragglerMin:    2 * time.Second,
		StragglerFactor: 3,
	})
	gSlow := mustGrant(t, c, "slow")
	completeOneShard(t, c, store, now, time.Second)
	*now = now.Add(4 * time.Second)
	gSpec := mustGrant(t, c, "spec")
	// This time the primary finishes first.
	runGrant(t, c, store, gSlow)
	if res, err := c.Complete(gSlow.Lease); err != nil || !res.Winner {
		t.Fatalf("primary complete: res=%+v err=%v", res, err)
	}
	// The speculative copy finishes too — identical content, so it is
	// verified and discarded without poisoning the run.
	runGrant(t, c, store, gSpec)
	res, err := c.Complete(gSpec.Lease)
	if err != nil {
		t.Fatalf("identical loser rejected: %v", err)
	}
	if res.Winner {
		t.Fatal("loser reported as winner")
	}
	// Its staging file is gone.
	if recs, _, err := store.ReadShard(gSpec.File); err != nil || len(recs) != 0 {
		t.Fatalf("staging file survives: %d recs, %v", len(recs), err)
	}
	if c.Err() != nil {
		t.Fatalf("run poisoned by identical duplicate: %v", c.Err())
	}
}

func TestDivergentDuplicatePoisonsRun(t *testing.T) {
	c, now, store := testCoordinator(t, Config{
		LeaseTTL:        time.Hour,
		StragglerMin:    2 * time.Second,
		StragglerFactor: 3,
	})
	gSlow := mustGrant(t, c, "slow")
	completeOneShard(t, c, store, now, time.Second)
	*now = now.Add(4 * time.Second)
	gSpec := mustGrant(t, c, "spec")
	runGrant(t, c, store, gSlow)
	if res, err := c.Complete(gSlow.Lease); err != nil || !res.Winner {
		t.Fatalf("primary complete: res=%+v err=%v", res, err)
	}
	// Forge a diverged speculative copy: same index set, one value off —
	// the shape of a real nondeterminism bug.
	recs, _, err := store.ReadShard(sweep.ShardName(gSlow.Shard, 2))
	if err != nil {
		t.Fatal(err)
	}
	w, err := store.OpenShard(gSpec.File, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		if i == 1 && len(rec.Vals) > 0 {
			rec.Vals = append([]float64(nil), rec.Vals...)
			rec.Vals[0] += 1
		}
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Complete(gSpec.Lease); err == nil {
		t.Fatal("diverged duplicate accepted")
	}
	if !errors.Is(c.Err(), ErrPoisoned) {
		t.Fatalf("run not poisoned: %v", c.Err())
	}
	// A poisoned coordinator hands out no more work and refuses to merge.
	if _, err := c.Acquire("w"); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("acquire on poisoned run: %v", err)
	}
	if _, err := c.Merge(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("merge on poisoned run: %v", err)
	}
}

func TestBootScanResumesStore(t *testing.T) {
	dir := t.TempDir()
	store := sweep.NewDirBackend(dir)
	spec := testSpec()
	// Shard 0 complete, shard 1 half-done — as left by a crashed fleet.
	if _, err := sweep.RunShardOn(store, spec, 0, 2, sweep.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sweep.RunShardOn(store, spec, 1, 2, sweep.Options{Workers: 1, StopAfter: 1}); err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_000_000, 0)
	c, err := New(Config{Spec: spec, Shards: 2, Store: store, Clock: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if st.Completed != 1 || st.Pending != 1 {
		t.Fatalf("boot status %+v, want 1 completed 1 pending", st)
	}
	// Only the partial shard is handed out, and it resumes rather than
	// recomputes: completing it finishes the sweep.
	g := mustGrant(t, c, "w")
	if g.Shard != 1 {
		t.Fatalf("granted shard %d, want 1", g.Shard)
	}
	runGrant(t, c, store, g)
	if res, err := c.Complete(g.Lease); err != nil || !res.Winner {
		t.Fatalf("complete: res=%+v err=%v", res, err)
	}
	got, err := c.Merge()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sweep.RunSerial(spec)
	if err != nil {
		t.Fatal(err)
	}
	var gotText, wantText bytes.Buffer
	got.Render(&gotText)
	want.Render(&wantText)
	if gotText.String() != wantText.String() {
		t.Fatal("resumed merge differs from serial oracle")
	}
}

func TestCostModelEstimates(t *testing.T) {
	var m costModel
	m.init(8)
	if got := m.estimate(3); got != 1 {
		t.Fatalf("empty-model estimate %d, want 1", got)
	}
	m.observe(sweep.Record{Index: 2, WallNS: 100})
	m.observe(sweep.Record{Index: 5, WallNS: 900})
	cases := []struct {
		idx  int
		want int64
	}{
		{2, 100},  // own observation
		{0, 100},  // nearest is 2
		{3, 100},  // 2 at distance 1
		{4, 900},  // 5 at distance 1 beats 2 at 2? no — lo checked first at d=1: idx 3 unobserved, hi 5 observed
		{7, 900},  // nearest is 5
	}
	for _, tc := range cases {
		if got := m.estimate(tc.idx); got != tc.want {
			t.Fatalf("estimate(%d) = %d, want %d", tc.idx, got, tc.want)
		}
	}
}

func TestSchedulerPrefersHeaviestShard(t *testing.T) {
	c, _, _ := testCoordinator(t, Config{Shards: 2})
	// Mark shard 0's indices observed (cheap): its remaining cost is 0,
	// shard 1 keeps positive remaining cost and is granted first.
	c.costs.observe(sweep.Record{Index: 0, WallNS: 1})
	c.costs.observe(sweep.Record{Index: 2, WallNS: 1})
	c.costs.observe(sweep.Record{Index: 4, WallNS: 1})
	g := mustGrant(t, c, "w")
	if g.Shard != 1 {
		t.Fatalf("granted shard %d, want heavier shard 1", g.Shard)
	}
}
