package fabric

import "netdesign/internal/sweep"

// costModel estimates per-instance compute cost from the WallNS stamps
// the engine records on every checkpointed record. The coordinator seeds
// it from the boot scan and feeds it every append, so a resumed sweep
// schedules on real observed costs, not instance counts.
type costModel struct {
	wall []int64 // observed WallNS per index; 0 = unobserved
	sum  int64   // sum of observed costs
	n    int     // observed indices
}

func (m *costModel) init(count int) { m.wall = make([]int64, count) }

func (m *costModel) observe(rec sweep.Record) {
	if rec.Index < 0 || rec.Index >= len(m.wall) || rec.WallNS <= 0 {
		return
	}
	if prev := m.wall[rec.Index]; prev == 0 {
		m.n++
		m.sum += rec.WallNS
	} else {
		m.sum += rec.WallNS - prev
	}
	m.wall[rec.Index] = rec.WallNS
}

// estimate predicts the cost of computing idx: its own observation if
// present, else the nearest observed index (sweep families vary cost
// smoothly along the index axis — neighbors are the best predictor),
// else the global mean, else 1 so empty models still order shards by
// instance count.
func (m *costModel) estimate(idx int) int64 {
	if idx < 0 || idx >= len(m.wall) {
		return 1
	}
	if m.wall[idx] > 0 {
		return m.wall[idx]
	}
	for d := 1; d < len(m.wall); d++ {
		if lo := idx - d; lo >= 0 && m.wall[lo] > 0 {
			return m.wall[lo]
		}
		if hi := idx + d; hi < len(m.wall) && m.wall[hi] > 0 {
			return m.wall[hi]
		}
	}
	if m.n > 0 {
		return m.sum / int64(m.n)
	}
	return 1
}

// remainingCostLocked sums the estimated cost of a shard's unobserved
// indices — the work a fresh attempt would actually do, since observed
// indices are already durable in the canonical checkpoint and resume
// skips them.
func (c *Coordinator) remainingCostLocked(shard int) int64 {
	var total int64
	for idx := shard; idx < c.spec.Count; idx += c.cfg.Shards {
		if c.costs.wall[idx] == 0 {
			total += c.costs.estimate(idx)
		}
	}
	return total
}

// pickPendingLocked chooses the next shard to grant: the unleased,
// unfinished shard with the heaviest remaining estimated cost, so the
// expensive shards start first and the sweep's tail stays short. Ties
// resolve to the lowest shard index, which keeps grant order
// deterministic under the fake clock.
func (c *Coordinator) pickPendingLocked() (int, bool) {
	best, bestCost := -1, int64(-1)
	for shard := range c.shards {
		st := &c.shards[shard]
		if st.done || len(st.attempts) > 0 {
			continue
		}
		if cost := c.remainingCostLocked(shard); cost > bestCost {
			best, bestCost = shard, cost
		}
	}
	return best, best >= 0
}
