package fabric

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"netdesign/internal/sweep"
	"netdesign/internal/sweep/backendtest"
)

// TestHTTPBackendContract holds the coordinator-served checkpoint store
// to the exact contract suite DirBackend passes: same append-only
// semantics, same torn-tail recovery, same fsync windows (observed
// server-side, where the real writer lives), same engine differential.
// The store is served bare — no lease fencing — because the contract is
// about storage semantics; fencing is layered on top and tested with the
// coordinator.
func TestHTTPBackendContract(t *testing.T) {
	backendtest.Run(t, func(t *testing.T) backendtest.Env {
		dir := t.TempDir()
		mux := http.NewServeMux()
		newStoreServer(sweep.NewDirBackend(dir)).register(mux)
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		cl := &Client{URL: srv.URL, HTTP: srv.Client()}
		return backendtest.Env{
			Backend: cl.Backend(0),
			Tamper: func(t *testing.T, name string, mutate func([]byte) []byte) {
				t.Helper()
				path := filepath.Join(dir, name)
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
					t.Fatal(err)
				}
			},
		}
	})
}

// TestHTTPAppendIdempotent pins the retry-safety of the write path: an
// append replayed with a stale offset (the response was lost, the bytes
// were not) is acknowledged without double-appending, while a genuinely
// conflicting offset is rejected.
func TestHTTPAppendIdempotent(t *testing.T) {
	dir := t.TempDir()
	store := sweep.NewDirBackend(dir)
	mux := http.NewServeMux()
	newStoreServer(store).register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	cl := &Client{URL: srv.URL, HTTP: srv.Client()}
	b := cl.Backend(0).(*httpBackend)

	name := sweep.ShardName(0, 1)
	w, err := b.OpenShard(name, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := sweep.Record{Index: 0, Cells: []string{"x"}, Vals: []float64{1.5}}
	if err := w.Append(rec); err != nil {
		t.Fatal(err)
	}
	hw := w.(*httpShardWriter)
	line, err := sweep.EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	wire := append(line, '\n')

	post := func(off int64, body []byte) (int, string) {
		t.Helper()
		st, data, err := cl.do(http.MethodPost, "/fabric/v1/ckpt/append",
			map[string][]string{"name": {name}, "off": {strconv.FormatInt(off, 10)}}, body)
		if err != nil {
			t.Fatal(err)
		}
		return st, string(data)
	}
	// Replay of the applied append: same bytes at the pre-append offset.
	if st, body := post(0, wire); st != http.StatusOK {
		t.Fatalf("replay rejected: %d %s", st, body)
	}
	// Conflicting offset (neither current nor an exact replay).
	if st, _ := post(hw.off+7, wire); st != http.StatusConflict {
		t.Fatalf("conflicting offset accepted: %d", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := store.ReadShard(name)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("checkpoint holds %d records after replay, want 1", len(recs))
	}
}
