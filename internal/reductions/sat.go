package reductions

import (
	"errors"
	"fmt"
	"math/rand"
)

// Literal is a possibly-negated propositional variable.
type Literal struct {
	Var int
	Neg bool
}

// Negated returns the complementary literal.
func (l Literal) Negated() Literal { return Literal{Var: l.Var, Neg: !l.Neg} }

func (l Literal) String() string {
	if l.Neg {
		return fmt.Sprintf("¬x%d", l.Var)
	}
	return fmt.Sprintf("x%d", l.Var)
}

// Clause is a disjunction of exactly three literals over distinct
// variables (the 3SAT-4 format of Tovey used by Theorem 12).
type Clause [3]Literal

// Formula is a 3SAT-4 instance: every clause has three literals on
// distinct variables and every variable occurs in at most four clauses.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// Validate checks the 3SAT-4 syntactic restrictions.
func (f *Formula) Validate() error {
	occ := make([]int, f.NumVars)
	for ci, c := range f.Clauses {
		vars := map[int]bool{}
		for _, l := range c {
			if l.Var < 0 || l.Var >= f.NumVars {
				return fmt.Errorf("sat: clause %d references unknown variable %d", ci, l.Var)
			}
			if vars[l.Var] {
				return fmt.Errorf("sat: clause %d repeats variable %d", ci, l.Var)
			}
			vars[l.Var] = true
			occ[l.Var]++
		}
	}
	for v, k := range occ {
		if k > 4 {
			return fmt.Errorf("sat: variable %d occurs %d > 4 times", v, k)
		}
	}
	return nil
}

// Eval reports whether the assignment satisfies every clause.
func (f *Formula) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		sat := false
		for _, l := range c {
			if assign[l.Var] != l.Neg {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// SolveBrute exhaustively searches assignments (formulas here are small
// validation instances). It returns a satisfying assignment if one exists.
func (f *Formula) SolveBrute() ([]bool, bool) {
	if f.NumVars > 30 {
		panic("sat: brute-force solver limited to 30 variables")
	}
	assign := make([]bool, f.NumVars)
	for mask := 0; mask < 1<<f.NumVars; mask++ {
		for v := range assign {
			assign[v] = mask&(1<<v) != 0
		}
		if f.Eval(assign) {
			return append([]bool(nil), assign...), true
		}
	}
	return nil, false
}

// Occurrence locates one appearance of a variable.
type Occurrence struct {
	Clause int  // clause index
	Neg    bool // appears negated there
}

// Occurrences returns, for each variable, its appearances in clause order.
// The Theorem-12 consistency gadgets connect consecutive entries.
func (f *Formula) Occurrences() [][]Occurrence {
	occ := make([][]Occurrence, f.NumVars)
	for ci, c := range f.Clauses {
		for _, l := range c {
			occ[l.Var] = append(occ[l.Var], Occurrence{Clause: ci, Neg: l.Neg})
		}
	}
	return occ
}

// LabelVariables assigns each variable a label in {1,…,9} such that
// variables sharing a clause get distinct labels — the paper's greedy
// argument: a variable occurs in ≤ 4 clauses and so conflicts with ≤ 8
// others, hence 9 labels always suffice. To keep the gadget constants
// n_j = 4·n_{j+1}² (n_9 = 7) as small as possible, colors are mapped to
// the largest labels first: the first color becomes label 9, the next 8,
// and so on.
func (f *Formula) LabelVariables() ([]int, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	// Conflict graph over variables.
	conflict := make([]map[int]bool, f.NumVars)
	for v := range conflict {
		conflict[v] = map[int]bool{}
	}
	for _, c := range f.Clauses {
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				conflict[c[i].Var][c[j].Var] = true
				conflict[c[j].Var][c[i].Var] = true
			}
		}
	}
	colors := make([]int, f.NumVars) // 0-based colors, -1 = unassigned
	for v := range colors {
		colors[v] = -1
	}
	for v := 0; v < f.NumVars; v++ {
		used := map[int]bool{}
		for u := range conflict[v] {
			if colors[u] >= 0 {
				used[colors[u]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		if c >= 9 {
			return nil, errors.New("sat: greedy labelling exceeded 9 labels (input is not 3SAT-4)")
		}
		colors[v] = c
	}
	labels := make([]int, f.NumVars)
	for v, c := range colors {
		labels[v] = 9 - c
	}
	return labels, nil
}

// RandomFormula draws a random 3SAT-4 formula with the given number of
// variables and clauses, rejecting clause candidates that would violate
// the occurrence bound. It errs when the shape is impossible
// (3·clauses > 4·vars) or sampling stalls.
func RandomFormula(rng *rand.Rand, numVars, numClauses int) (*Formula, error) {
	if numVars < 3 {
		return nil, errors.New("sat: need at least 3 variables")
	}
	if 3*numClauses > 4*numVars {
		return nil, errors.New("sat: too many clauses for the occurrence bound")
	}
	// Rejection sampling can paint itself into a corner near the
	// occurrence bound (3·clauses close to 4·vars), so restart the whole
	// draw when a clause cannot be placed.
	for restart := 0; restart < 200; restart++ {
		f := &Formula{NumVars: numVars}
		occ := make([]int, numVars)
		stalled := false
		for len(f.Clauses) < numClauses && !stalled {
			ok := false
			for attempt := 0; attempt < 200; attempt++ {
				a := rng.Intn(numVars)
				b := rng.Intn(numVars)
				c := rng.Intn(numVars)
				if a == b || a == c || b == c {
					continue
				}
				if occ[a] >= 4 || occ[b] >= 4 || occ[c] >= 4 {
					continue
				}
				cl := Clause{
					{Var: a, Neg: rng.Intn(2) == 0},
					{Var: b, Neg: rng.Intn(2) == 0},
					{Var: c, Neg: rng.Intn(2) == 0},
				}
				f.Clauses = append(f.Clauses, cl)
				occ[a]++
				occ[b]++
				occ[c]++
				ok = true
				break
			}
			stalled = !ok
		}
		if !stalled {
			if err := f.Validate(); err != nil {
				return nil, err
			}
			return f, nil
		}
	}
	return nil, errors.New("sat: random generation stalled")
}
