package reductions

import "netdesign/internal/graph"

// IsIndependentSet reports whether nodes is an independent set of g.
func IsIndependentSet(g *graph.Graph, nodes []int) bool {
	in := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		if in[v] {
			return false
		}
		in[v] = true
	}
	for _, e := range g.Edges() {
		if in[e.U] && in[e.V] {
			return false
		}
	}
	return true
}

// MaxIndependentSet returns a maximum independent set of g by exact
// branch-and-bound, suitable for the small 3-regular graphs feeding the
// Theorem-5 reduction. Branching follows the standard rule: pick a vertex
// v of maximum residual degree and branch on excluding v (keeping its
// neighbors available) or including v (discarding N[v]).
func MaxIndependentSet(g *graph.Graph) []int {
	n := g.N()
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	adj := make([][]int, n)
	for v := 0; v < n; v++ {
		seen := map[int]bool{}
		for _, h := range g.Adj(v) {
			if !seen[h.To] {
				seen[h.To] = true
				adj[v] = append(adj[v], h.To)
			}
		}
	}
	var best []int
	var cur []int
	aliveCount := n

	var dfs func()
	dfs = func() {
		if len(cur)+aliveCount <= len(best) {
			return // even taking everything left cannot beat the incumbent
		}
		// Pick the alive vertex of maximum alive-degree.
		pick, deg := -1, -1
		for v := 0; v < n; v++ {
			if !alive[v] {
				continue
			}
			d := 0
			for _, u := range adj[v] {
				if alive[u] {
					d++
				}
			}
			if d > deg {
				pick, deg = v, d
			}
		}
		if pick == -1 {
			if len(cur) > len(best) {
				best = append([]int(nil), cur...)
			}
			return
		}
		if deg == 0 {
			// All remaining vertices are isolated: take them all.
			taken := 0
			for v := 0; v < n; v++ {
				if alive[v] {
					cur = append(cur, v)
					taken++
				}
			}
			if len(cur) > len(best) {
				best = append([]int(nil), cur...)
			}
			cur = cur[:len(cur)-taken]
			return
		}
		// Branch 1: include pick, removing its closed neighborhood.
		removed := []int{pick}
		alive[pick] = false
		for _, u := range adj[pick] {
			if alive[u] {
				alive[u] = false
				removed = append(removed, u)
			}
		}
		aliveCount -= len(removed)
		cur = append(cur, pick)
		dfs()
		cur = cur[:len(cur)-1]
		for _, u := range removed {
			alive[u] = true
		}
		aliveCount += len(removed)

		// Branch 2: exclude pick.
		alive[pick] = false
		aliveCount--
		dfs()
		alive[pick] = true
		aliveCount++
	}
	dfs()
	return best
}
