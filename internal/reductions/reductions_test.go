package reductions

import (
	"math/rand"
	"testing"

	"netdesign/internal/graph"
)

func TestBinPackingValidate(t *testing.T) {
	good := BinPacking{Sizes: []int{4, 2, 2, 4, 4}, Bins: 2, Capacity: 8}
	if err := good.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	bad := []BinPacking{
		{Sizes: []int{4, 4}, Bins: 0, Capacity: 8},          // no bins
		{Sizes: []int{4, 4}, Bins: 1, Capacity: 7},          // odd capacity
		{Sizes: []int{3, 5}, Bins: 1, Capacity: 8},          // odd sizes
		{Sizes: []int{10}, Bins: 1, Capacity: 8},            // oversize item
		{Sizes: []int{4, 4}, Bins: 2, Capacity: 8},          // total ≠ k·C
		{Sizes: []int{-2, 4, 6}, Bins: 1, Capacity: 8},      // non-positive
		{Sizes: []int{4, 4, 4, 4}, Bins: 2, Capacity: 6},    // item fits but odd? no: total 16 ≠ 12
		{Sizes: []int{2, 2, 2, 2}, Bins: 2, Capacity: 0},    // zero capacity
		{Sizes: []int{2, 2, 2, 2, 2}, Bins: 2, Capacity: 4}, // total 10 ≠ 8
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("bad instance %d accepted", i)
		}
	}
}

func TestBinPackingSolveExact(t *testing.T) {
	// Solvable: {6,2,4,4,2,6} into 3 bins of 8.
	in := BinPacking{Sizes: []int{6, 2, 4, 4, 2, 6}, Bins: 3, Capacity: 8}
	assign, ok := in.SolveExact()
	if !ok || !in.CheckAssignment(assign) {
		t.Fatalf("solvable instance not solved: %v %v", assign, ok)
	}
	// Unsolvable: {6,6,6,2,2,2} into 2 bins of 12 is solvable (6+6, rest),
	// but {6,6,4,4,4} into 2 bins of 12 is not: 6+6=12 leaves 4+4+4=12 ✓…
	// pick a genuinely unsolvable one: {10,10,2,2} into 2 bins of 12:
	// 10+2=12 twice — solvable. Use {10,6,6,2} into 2 bins of 12:
	// 10 needs exactly 2 → 10+2; remaining 6+6=12 ✓ solvable too.
	// {10,8,4,2} into 2 bins of 12: 10+2, 8+4 ✓. Try {10,10,4}... total
	// must be 24: {10,10,4} no. Use {10,4,4,4,2} total 24: bins of 12:
	// 10 pairs only with 2 → 10+2; rest 4+4+4=12 ✓. Hmm — parity makes
	// small unsolvable instances rare; force one with big items:
	// {8,8,8} into 2 bins of 12: total 24 ✓, but no subset sums to 12.
	un := BinPacking{Sizes: []int{8, 8, 8}, Bins: 2, Capacity: 12}
	if err := un.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := un.SolveExact(); ok {
		t.Error("unsolvable instance solved")
	}
}

func TestBinPackingSolveExactRandomCrossCheck(t *testing.T) {
	// Construct instances that are solvable by design (split full bins),
	// and verify the solver finds a perfect packing.
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 40; trial++ {
		k := 1 + rng.Intn(3)
		C := 2 * (3 + rng.Intn(6)) // even, 6..16
		var sizes []int
		for j := 0; j < k; j++ {
			rem := C
			for rem > 0 {
				s := 2 * (1 + rng.Intn(rem/2))
				if s > rem {
					s = rem
				}
				sizes = append(sizes, s)
				rem -= s
			}
		}
		in := BinPacking{Sizes: sizes, Bins: k, Capacity: C}
		if err := in.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assign, ok := in.SolveExact()
		if !ok || !in.CheckAssignment(assign) {
			t.Fatalf("trial %d: designed-solvable instance unsolved", trial)
		}
	}
}

func TestStricten(t *testing.T) {
	// 3 items of size 3 into 2 bins of 5: fits (3+? no: 3+3=6>5 →
	// bins {3},{3,?}… k=2,cap=5: 3,3,3 → needs 2 bins? 3+3 > 5 so one
	// bin per pair impossible: {3},{3,3}→6>5: does NOT fit in 2 bins.
	strict, err := Stricten([]int{3, 3, 3}, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := strict.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := strict.SolveExact(); ok {
		t.Error("strict form of unsolvable instance solved")
	}
	// 2+3 into 2 bins of 5… wait 2+3=5 fits in ONE bin; 2 bins of 5
	// with filler: solvable.
	strict2, err := Stricten([]int{2, 3}, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := strict2.SolveExact(); !ok {
		t.Error("strict form of solvable instance unsolved")
	}
	// Overfull inputs are rejected.
	if _, err := Stricten([]int{5, 5, 5}, 2, 5); err == nil {
		t.Error("overfull instance accepted")
	}
	if _, err := Stricten([]int{9}, 1, 5); err == nil {
		t.Error("oversize item accepted")
	}
}

func TestStrictenAgainstBrute(t *testing.T) {
	// Cross-check Stricten+SolveExact against a direct fit search.
	rng := rand.New(rand.NewSource(20))
	fits := func(sizes []int, k, cap int) bool {
		loads := make([]int, k)
		var dfs func(i int) bool
		dfs = func(i int) bool {
			if i == len(sizes) {
				return true
			}
			seen := map[int]bool{}
			for j := 0; j < k; j++ {
				if loads[j]+sizes[i] <= cap && !seen[loads[j]] {
					seen[loads[j]] = true
					loads[j] += sizes[i]
					if dfs(i + 1) {
						return true
					}
					loads[j] -= sizes[i]
				}
			}
			return false
		}
		return dfs(0)
	}
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(3)
		cap := 4 + rng.Intn(6)
		var sizes []int
		for i := 0; i < 2+rng.Intn(5); i++ {
			sizes = append(sizes, 1+rng.Intn(cap))
		}
		total := 0
		for _, s := range sizes {
			total += s
		}
		if total > k*cap {
			continue
		}
		strict, err := Stricten(sizes, k, cap)
		if err != nil {
			t.Fatal(err)
		}
		_, got := strict.SolveExact()
		if want := fits(sizes, k, cap); got != want {
			t.Fatalf("trial %d: strict %v vs direct %v (sizes=%v k=%d cap=%d)", trial, got, want, sizes, k, cap)
		}
	}
}

func TestFirstFitDecreasing(t *testing.T) {
	in := BinPacking{Sizes: []int{6, 2, 4, 4, 2, 6}, Bins: 3, Capacity: 8}
	if got := in.FirstFitDecreasing(); got < 3 || got > 4 {
		t.Errorf("FFD = %d bins", got)
	}
}

func TestMaxIndependentSetKnown(t *testing.T) {
	// Path 0-1-2-3-4: max IS {0,2,4}.
	g := graph.Path(4, 1)
	is := MaxIndependentSet(g)
	if len(is) != 3 || !IsIndependentSet(g, is) {
		t.Errorf("path IS = %v", is)
	}
	// Complete graph K5: max IS size 1.
	k5 := graph.Complete(5, func(i, j int) float64 { return 1 })
	if is := MaxIndependentSet(k5); len(is) != 1 {
		t.Errorf("K5 IS = %v", is)
	}
	// Cycle with 6 edges (7 nodes): max IS = 3.
	c := graph.Cycle(5, 1) // 6 nodes in a 6-cycle
	if is := MaxIndependentSet(c); len(is) != 3 {
		t.Errorf("C6 IS = %v", is)
	}
	// Petersen graph: independence number 4.
	pet := graph.New(10)
	outer := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	inner := [][2]int{{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}}
	spokes := [][2]int{{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}}
	for _, pairs := range [][][2]int{outer, inner, spokes} {
		for _, p := range pairs {
			pet.AddEdge(p[0], p[1], 1)
		}
	}
	if is := MaxIndependentSet(pet); len(is) != 4 || !IsIndependentSet(pet, is) {
		t.Errorf("Petersen IS = %v", is)
	}
}

func TestMaxIndependentSetAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(9)
		g := graph.RandomConnected(rng, n, 0.35, 1, 2)
		got := MaxIndependentSet(g)
		if !IsIndependentSet(g, got) {
			t.Fatalf("trial %d: returned set not independent", trial)
		}
		// Brute force.
		best := 0
		for mask := 0; mask < 1<<n; mask++ {
			var set []int
			for v := 0; v < n; v++ {
				if mask&(1<<v) != 0 {
					set = append(set, v)
				}
			}
			if len(set) > best && IsIndependentSet(g, set) {
				best = len(set)
			}
		}
		if len(got) != best {
			t.Fatalf("trial %d: B&B %d vs brute %d", trial, len(got), best)
		}
	}
}

func TestIsIndependentSetDuplicates(t *testing.T) {
	g := graph.Path(3, 1)
	if IsIndependentSet(g, []int{0, 0}) {
		t.Error("duplicate nodes accepted")
	}
}

func TestFormulaValidate(t *testing.T) {
	f := &Formula{NumVars: 3, Clauses: []Clause{
		{{Var: 0}, {Var: 1, Neg: true}, {Var: 2}},
	}}
	if err := f.Validate(); err != nil {
		t.Errorf("valid formula rejected: %v", err)
	}
	repeat := &Formula{NumVars: 3, Clauses: []Clause{
		{{Var: 0}, {Var: 0, Neg: true}, {Var: 2}},
	}}
	if err := repeat.Validate(); err == nil {
		t.Error("repeated variable accepted")
	}
	unknown := &Formula{NumVars: 2, Clauses: []Clause{
		{{Var: 0}, {Var: 1}, {Var: 5}},
	}}
	if err := unknown.Validate(); err == nil {
		t.Error("unknown variable accepted")
	}
	// Five occurrences of variable 0.
	over := &Formula{NumVars: 11}
	for i := 0; i < 5; i++ {
		over.Clauses = append(over.Clauses, Clause{{Var: 0}, {Var: 2*i + 1}, {Var: 2*i + 2}})
	}
	if err := over.Validate(); err == nil {
		t.Error("occurrence bound violation accepted")
	}
}

func TestFormulaEvalAndBrute(t *testing.T) {
	// (x0 ∨ x1 ∨ x2) ∧ (¬x0 ∨ ¬x1 ∨ ¬x2)
	f := &Formula{NumVars: 3, Clauses: []Clause{
		{{Var: 0}, {Var: 1}, {Var: 2}},
		{{Var: 0, Neg: true}, {Var: 1, Neg: true}, {Var: 2, Neg: true}},
	}}
	assign, ok := f.SolveBrute()
	if !ok || !f.Eval(assign) {
		t.Fatal("satisfiable formula unsolved")
	}
	// Unsatisfiable 3SAT-4 needs care; use all eight sign patterns over
	// three variables — every assignment falsifies one clause — but that
	// uses each variable 8 times. Instead verify Eval directly.
	if f.Eval([]bool{false, false, false}) {
		t.Error("falsifying assignment accepted")
	}
	if !f.Eval([]bool{true, false, false}) {
		t.Error("satisfying assignment rejected")
	}
}

func TestLabelVariables(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 25; trial++ {
		nv := 6 + rng.Intn(10)
		nc := 2 + rng.Intn(4*nv/3-2)
		f, err := RandomFormula(rng, nv, nc)
		if err != nil {
			t.Fatal(err)
		}
		labels, err := f.LabelVariables()
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range f.Clauses {
			if labels[c[0].Var] == labels[c[1].Var] ||
				labels[c[0].Var] == labels[c[2].Var] ||
				labels[c[1].Var] == labels[c[2].Var] {
				t.Fatalf("trial %d: clause shares a label", trial)
			}
		}
		for _, l := range labels {
			if l < 1 || l > 9 {
				t.Fatalf("label %d out of range", l)
			}
		}
	}
}

func TestOccurrences(t *testing.T) {
	f := &Formula{NumVars: 4, Clauses: []Clause{
		{{Var: 0}, {Var: 1}, {Var: 2}},
		{{Var: 0, Neg: true}, {Var: 1}, {Var: 3}},
	}}
	occ := f.Occurrences()
	if len(occ[0]) != 2 || occ[0][0].Clause != 0 || occ[0][1].Neg != true {
		t.Errorf("occ[0] = %v", occ[0])
	}
	if len(occ[3]) != 1 || occ[3][0].Clause != 1 {
		t.Errorf("occ[3] = %v", occ[3])
	}
}

func TestRandomFormulaShape(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	if _, err := RandomFormula(rng, 2, 1); err == nil {
		t.Error("too few variables accepted")
	}
	if _, err := RandomFormula(rng, 3, 5); err == nil {
		t.Error("occurrence-impossible shape accepted")
	}
	f, err := RandomFormula(rng, 9, 12) // exactly at the 3·12 = 4·9 bound
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLiteralHelpers(t *testing.T) {
	l := Literal{Var: 3}
	if l.Negated().Neg != true || l.Negated().Var != 3 {
		t.Error("Negated wrong")
	}
	if l.String() != "x3" || l.Negated().String() != "¬x3" {
		t.Errorf("String: %s / %s", l, l.Negated())
	}
}
