// Package reductions implements from scratch the NP-complete source
// problems consumed by the paper's hardness constructions — BIN PACKING
// (Theorem 3), INDEPENDENT SET in 3-regular graphs (Theorem 5) and 3SAT-4
// (Theorem 12) — together with exact solvers used to validate each
// reduction in both directions on small instances.
package reductions

import (
	"errors"
	"fmt"
	"sort"
)

// BinPacking is an instance of the paper's strict BIN PACKING variant:
// allocate every item to one of Bins bins so that each bin's total size is
// exactly Capacity. The paper further restricts sizes and capacity to be
// even; Stricten performs that conversion from a conventional instance.
type BinPacking struct {
	Sizes    []int
	Bins     int
	Capacity int
}

// TotalSize returns Σ sizes.
func (bp BinPacking) TotalSize() int {
	sum := 0
	for _, s := range bp.Sizes {
		sum += s
	}
	return sum
}

// Validate checks the strict-form invariants used by the Theorem-3
// reduction: even positive sizes, even capacity ≥ max size, and total
// size exactly Bins·Capacity.
func (bp BinPacking) Validate() error {
	if bp.Bins < 1 {
		return errors.New("binpacking: need at least one bin")
	}
	if bp.Capacity < 2 || bp.Capacity%2 != 0 {
		return fmt.Errorf("binpacking: capacity %d must be a positive even integer", bp.Capacity)
	}
	for i, s := range bp.Sizes {
		if s <= 0 || s%2 != 0 {
			return fmt.Errorf("binpacking: size %d of item %d must be a positive even integer", s, i)
		}
		if s > bp.Capacity {
			return fmt.Errorf("binpacking: item %d (size %d) exceeds capacity %d", i, s, bp.Capacity)
		}
	}
	if got, want := bp.TotalSize(), bp.Bins*bp.Capacity; got != want {
		return fmt.Errorf("binpacking: total size %d ≠ bins·capacity = %d", got, want)
	}
	return nil
}

// Stricten converts a conventional instance — do the items fit into k
// bins of capacity cap? — into the paper's strict form by adding unit
// filler items and doubling everything. The strict instance has a perfect
// packing iff the original items fit.
func Stricten(sizes []int, k, cap int) (BinPacking, error) {
	total := 0
	for _, s := range sizes {
		if s <= 0 || s > cap {
			return BinPacking{}, fmt.Errorf("binpacking: size %d out of (0,%d]", s, cap)
		}
		total += s
	}
	if total > k*cap {
		return BinPacking{}, errors.New("binpacking: items exceed total capacity")
	}
	strict := BinPacking{Bins: k, Capacity: 2 * cap}
	for _, s := range sizes {
		strict.Sizes = append(strict.Sizes, 2*s)
	}
	for f := 0; f < k*cap-total; f++ {
		strict.Sizes = append(strict.Sizes, 2)
	}
	return strict, nil
}

// SolveExact decides the strict instance and, when solvable, returns an
// assignment item→bin filling every bin exactly. The search assigns items
// in decreasing size order with two classic prunes: skip bins with equal
// residual capacity (symmetry) and abandon bins whose residual cannot be
// completed by the remaining items.
func (bp BinPacking) SolveExact() ([]int, bool) {
	if err := bp.Validate(); err != nil {
		return nil, false
	}
	n := len(bp.Sizes)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return bp.Sizes[order[a]] > bp.Sizes[order[b]] })

	residual := make([]int, bp.Bins)
	for j := range residual {
		residual[j] = bp.Capacity
	}
	assign := make([]int, n)
	var dfs func(k int) bool
	dfs = func(k int) bool {
		if k == n {
			return true // total == bins·capacity, so all residuals are 0
		}
		item := order[k]
		size := bp.Sizes[item]
		tried := map[int]bool{}
		for j := 0; j < bp.Bins; j++ {
			if residual[j] < size || tried[residual[j]] {
				continue
			}
			tried[residual[j]] = true
			residual[j] -= size
			assign[item] = j
			if dfs(k + 1) {
				return true
			}
			residual[j] += size
		}
		return false
	}
	if dfs(0) {
		return assign, true
	}
	return nil, false
}

// FirstFitDecreasing is the classical heuristic: it returns a bin count
// that packs all items within capacity (ignoring the exact-fill
// requirement) — useful as a quick feasibility screen and as a baseline.
func (bp BinPacking) FirstFitDecreasing() int {
	sizes := append([]int(nil), bp.Sizes...)
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	var loads []int
	for _, s := range sizes {
		placed := false
		for j := range loads {
			if loads[j]+s <= bp.Capacity {
				loads[j] += s
				placed = true
				break
			}
		}
		if !placed {
			loads = append(loads, s)
		}
	}
	return len(loads)
}

// CheckAssignment verifies that assign is a perfect packing.
func (bp BinPacking) CheckAssignment(assign []int) bool {
	if len(assign) != len(bp.Sizes) {
		return false
	}
	loads := make([]int, bp.Bins)
	for i, j := range assign {
		if j < 0 || j >= bp.Bins {
			return false
		}
		loads[j] += bp.Sizes[i]
	}
	for _, l := range loads {
		if l != bp.Capacity {
			return false
		}
	}
	return true
}
