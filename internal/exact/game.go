package exact

import (
	"fmt"
	"math/big"

	"netdesign/internal/graph"
)

// Game is a broadcast game with exact rational edge weights and big
// integer player multiplicities. The embedded graph supplies topology
// only; its float weights are ignored by this engine (builders typically
// set them to float approximations for display).
type Game struct {
	G    *graph.Graph
	Root int
	W    []*big.Rat // W[edgeID] — exact weight, ≥ 0
	Mult []*big.Int // Mult[node] — players at the node; root 0, others ≥ 1
}

// NewGame validates and returns an exact broadcast game.
func NewGame(g *graph.Graph, root int, w []*big.Rat, mult []*big.Int) (*Game, error) {
	if root < 0 || root >= g.N() {
		return nil, fmt.Errorf("exact: root %d out of range", root)
	}
	if len(w) != g.M() {
		return nil, fmt.Errorf("exact: %d weights for %d edges", len(w), g.M())
	}
	for id, x := range w {
		if x == nil || x.Sign() < 0 {
			return nil, fmt.Errorf("exact: edge %d has invalid weight", id)
		}
	}
	if len(mult) != g.N() {
		return nil, fmt.Errorf("exact: %d multiplicities for %d nodes", len(mult), g.N())
	}
	for v, m := range mult {
		if m == nil {
			return nil, fmt.Errorf("exact: node %d multiplicity nil", v)
		}
		if v == root {
			if m.Sign() != 0 {
				return nil, fmt.Errorf("exact: root multiplicity must be 0")
			}
		} else if m.Sign() <= 0 {
			return nil, fmt.Errorf("exact: node %d multiplicity must be ≥ 1", v)
		}
	}
	if !g.Connected() {
		return nil, graph.ErrDisconnected
	}
	return &Game{G: g, Root: root, W: w, Mult: mult}, nil
}

// NumPlayers returns Σ multiplicities.
func (eg *Game) NumPlayers() *big.Int {
	sum := new(big.Int)
	for _, m := range eg.Mult {
		sum.Add(sum, m)
	}
	return sum
}

// Subsidy assigns exact rational subsidies by edge ID; nil slice and nil
// entries both mean zero.
type Subsidy []*big.Rat

// At returns b_a (never nil).
func (b Subsidy) At(edgeID int) *big.Rat {
	if b == nil || edgeID >= len(b) || b[edgeID] == nil {
		return new(big.Rat)
	}
	return b[edgeID]
}

// Cost returns Σ b_a.
func (b Subsidy) Cost() *big.Rat {
	s := new(big.Rat)
	for id := range b {
		s.Add(s, b.At(id))
	}
	return s
}

// Validate checks 0 ≤ b_a ≤ w_a exactly.
func (b Subsidy) Validate(eg *Game) error {
	if b == nil {
		return nil
	}
	if len(b) != eg.G.M() {
		return fmt.Errorf("exact: subsidy has %d entries for %d edges", len(b), eg.G.M())
	}
	for id := range b {
		v := b.At(id)
		if v.Sign() < 0 || v.Cmp(eg.W[id]) > 0 {
			return fmt.Errorf("exact: subsidy on edge %d outside [0, w]", id)
		}
	}
	return nil
}

// State is a spanning-tree state of an exact broadcast game.
type State struct {
	EG   *Game
	Tree *graph.RootedTree
	NA   []*big.Int // usage per edge (nil off tree)
}

// NewState roots the spanning tree and computes exact usage counts.
func NewState(eg *Game, treeEdges []int) (*State, error) {
	tr, err := graph.NewRootedTree(eg.G, eg.Root, treeEdges)
	if err != nil {
		return nil, err
	}
	// Subtree multiplicity sums, bottom-up over the BFS order.
	sub := make([]*big.Int, eg.G.N())
	for i := len(tr.Order) - 1; i >= 0; i-- {
		v := tr.Order[i]
		s := new(big.Int).Set(eg.Mult[v])
		for _, c := range tr.Children[v] {
			s.Add(s, sub[c])
		}
		sub[v] = s
	}
	na := make([]*big.Int, eg.G.M())
	for v := 0; v < eg.G.N(); v++ {
		if v != eg.Root {
			na[tr.ParEdge[v]] = sub[v]
		}
	}
	return &State{EG: eg, Tree: tr, NA: na}, nil
}

// Weight returns wgt(T) exactly.
func (st *State) Weight() *big.Rat {
	s := new(big.Rat)
	for _, id := range st.Tree.EdgeIDs {
		s.Add(s, st.EG.W[id])
	}
	return s
}

// PlayerCost returns the exact cost of a player at node u under b.
func (st *State) PlayerCost(u int, b Subsidy) *big.Rat {
	sum := new(big.Rat)
	for v := u; v != st.EG.Root; v = st.Tree.Parent[v] {
		id := st.Tree.ParEdge[v]
		share := Sub(st.EG.W[id], b.At(id))
		share.Quo(share, RInt(st.NA[id]))
		sum.Add(sum, share)
	}
	return sum
}

// costPrefixes returns up[u] = Σ_{a∈T_u}(w−b)/n_a and
// dev[u] = Σ_{a∈T_u}(w−b)/(n_a+1) for every node.
func (st *State) costPrefixes(b Subsidy) (up, dev []*big.Rat) {
	n := st.EG.G.N()
	up = make([]*big.Rat, n)
	dev = make([]*big.Rat, n)
	up[st.EG.Root] = new(big.Rat)
	dev[st.EG.Root] = new(big.Rat)
	one := I(1)
	for _, v := range st.Tree.Order {
		if v == st.EG.Root {
			continue
		}
		id := st.Tree.ParEdge[v]
		p := st.Tree.Parent[v]
		share := Sub(st.EG.W[id], b.At(id))
		up[v] = Add(up[p], Quo(share, RInt(st.NA[id])))
		dev[v] = Add(dev[p], Quo(share, RInt(AddI(st.NA[id], one))))
	}
	return up, dev
}

// Violation is a profitable deviation found by the exact Lemma-2 check.
type Violation struct {
	Node    int
	ViaEdge int
	Current *big.Rat
	Better  *big.Rat
}

func (v *Violation) String() string {
	return fmt.Sprintf("player %d deviates via edge %d (%s → %s)",
		v.Node, v.ViaEdge, RatString(v.Current), RatString(v.Better))
}

// FindViolation runs the exact Lemma-2 equilibrium check (see package
// broadcast for the derivation); nil means T is an equilibrium of the
// extension with subsidies b.
func (st *State) FindViolation(b Subsidy) *Violation {
	up, dev := st.costPrefixes(b)
	for _, e := range st.EG.G.Edges() {
		if st.Tree.Contains(e.ID) {
			continue
		}
		we := Sub(st.EG.W[e.ID], b.At(e.ID))
		for _, dir := range [2][2]int{{e.U, e.V}, {e.V, e.U}} {
			u, v := dir[0], dir[1]
			if u == st.EG.Root {
				continue
			}
			x := st.Tree.LCA(u, v)
			lhs := Sub(up[u], up[x])
			rhs := Add(we, Sub(dev[v], dev[x]))
			if lhs.Cmp(rhs) > 0 { // strict improvement only
				return &Violation{Node: u, ViaEdge: e.ID, Current: lhs, Better: rhs}
			}
		}
	}
	return nil
}

// IsEquilibrium reports whether T is an exact Nash equilibrium under b.
func (st *State) IsEquilibrium(b Subsidy) bool { return st.FindViolation(b) == nil }

// Violations returns every violated Lemma-2 constraint under b — the
// exact-engine counterpart of the float engine's diagnostic, used when
// dissecting gadget constructions.
func (st *State) Violations(b Subsidy) []Violation {
	var all []Violation
	up, dev := st.costPrefixes(b)
	for _, e := range st.EG.G.Edges() {
		if st.Tree.Contains(e.ID) {
			continue
		}
		we := Sub(st.EG.W[e.ID], b.At(e.ID))
		for _, dir := range [2][2]int{{e.U, e.V}, {e.V, e.U}} {
			u, v := dir[0], dir[1]
			if u == st.EG.Root {
				continue
			}
			x := st.Tree.LCA(u, v)
			lhs := Sub(up[u], up[x])
			rhs := Add(we, Sub(dev[v], dev[x]))
			if lhs.Cmp(rhs) > 0 {
				all = append(all, Violation{Node: u, ViaEdge: e.ID, Current: lhs, Better: rhs})
			}
		}
	}
	return all
}
