// Package exact mirrors the broadcast equilibrium engine in exact rational
// arithmetic (math/big). The paper's all-or-nothing hardness construction
// (Theorem 12) uses auxiliary player counts n_j = 4·n_{j+1}² with n_9 = 7,
// which reach ~10^369 for label 1 — far beyond float64 — and its
// equilibrium arguments hinge on strict inequalities between terms like
// 1/n_j and 1/(2n_j²). This engine checks every Lemma-2 constraint with
// *big.Rat costs and *big.Int multiplicities, so the reduction is
// reproduced with zero numerical slack.
package exact

import (
	"fmt"
	"math/big"
)

// R returns the rational a/b.
func R(a, b int64) *big.Rat {
	if b == 0 {
		panic("exact: division by zero")
	}
	return big.NewRat(a, b)
}

// RI returns the rational n/1.
func RI(n int64) *big.Rat { return new(big.Rat).SetInt64(n) }

// RInt returns the rational x/1 for a big integer x.
func RInt(x *big.Int) *big.Rat { return new(big.Rat).SetInt(x) }

// Inv returns 1/x for a big integer x ≠ 0.
func Inv(x *big.Int) *big.Rat {
	if x.Sign() == 0 {
		panic("exact: inverse of zero")
	}
	return new(big.Rat).SetFrac(big.NewInt(1), x)
}

// Add returns a+b as a fresh rational.
func Add(a, b *big.Rat) *big.Rat { return new(big.Rat).Add(a, b) }

// Sub returns a−b as a fresh rational.
func Sub(a, b *big.Rat) *big.Rat { return new(big.Rat).Sub(a, b) }

// Mul returns a·b as a fresh rational.
func Mul(a, b *big.Rat) *big.Rat { return new(big.Rat).Mul(a, b) }

// Quo returns a/b as a fresh rational.
func Quo(a, b *big.Rat) *big.Rat {
	if b.Sign() == 0 {
		panic("exact: division by zero")
	}
	return new(big.Rat).Quo(a, b)
}

// Sum returns the sum of the given rationals (zero for none).
func Sum(xs ...*big.Rat) *big.Rat {
	s := new(big.Rat)
	for _, x := range xs {
		s.Add(s, x)
	}
	return s
}

// I returns a fresh big integer with value n.
func I(n int64) *big.Int { return big.NewInt(n) }

// MulI returns a·b for big integers.
func MulI(a, b *big.Int) *big.Int { return new(big.Int).Mul(a, b) }

// AddI returns a+b for big integers.
func AddI(a, b *big.Int) *big.Int { return new(big.Int).Add(a, b) }

// SubI returns a−b for big integers.
func SubI(a, b *big.Int) *big.Int { return new(big.Int).Sub(a, b) }

// RatString formats r compactly for diagnostics (decimal when small,
// fraction otherwise).
func RatString(r *big.Rat) string {
	if r.IsInt() {
		return r.Num().String()
	}
	f, _ := r.Float64()
	if f > -1e6 && f < 1e6 {
		return fmt.Sprintf("%s (≈%.6g)", r.RatString(), f)
	}
	return r.RatString()
}
