package exact

import (
	"math/big"
	"math/rand"
	"testing"

	"netdesign/internal/broadcast"
	"netdesign/internal/game"
	"netdesign/internal/graph"
)

func TestRatHelpers(t *testing.T) {
	if R(1, 2).Cmp(big.NewRat(1, 2)) != 0 {
		t.Error("R wrong")
	}
	if RI(7).Cmp(big.NewRat(7, 1)) != 0 {
		t.Error("RI wrong")
	}
	if Inv(I(4)).Cmp(R(1, 4)) != 0 {
		t.Error("Inv wrong")
	}
	if Add(R(1, 3), R(1, 6)).Cmp(R(1, 2)) != 0 {
		t.Error("Add wrong")
	}
	if Sub(R(1, 2), R(1, 3)).Cmp(R(1, 6)) != 0 {
		t.Error("Sub wrong")
	}
	if Mul(R(2, 3), R(3, 4)).Cmp(R(1, 2)) != 0 {
		t.Error("Mul wrong")
	}
	if Quo(R(1, 2), R(1, 4)).Cmp(RI(2)) != 0 {
		t.Error("Quo wrong")
	}
	if Sum(R(1, 4), R(1, 4), R(1, 2)).Cmp(RI(1)) != 0 {
		t.Error("Sum wrong")
	}
	if MulI(I(6), I(7)).Int64() != 42 || AddI(I(1), I(2)).Int64() != 3 || SubI(I(5), I(2)).Int64() != 3 {
		t.Error("int helpers wrong")
	}
	for name, fn := range map[string]func(){
		"R zero denom": func() { R(1, 0) },
		"Inv zero":     func() { Inv(I(0)) },
		"Quo zero":     func() { Quo(RI(1), new(big.Rat)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
	if RatString(RI(3)) != "3" {
		t.Errorf("RatString int: %s", RatString(RI(3)))
	}
	if s := RatString(R(1, 3)); s == "" {
		t.Error("RatString fraction empty")
	}
	huge := new(big.Rat).SetFrac(new(big.Int).Exp(I(10), I(40), nil), I(1))
	if s := RatString(huge); s == "" {
		t.Error("RatString huge empty")
	}
}

func TestNewGameValidation(t *testing.T) {
	g := graph.Cycle(2, 1)
	w := []*big.Rat{RI(1), RI(1), RI(1)}
	mult := []*big.Int{I(0), I(1), I(1)}
	if _, err := NewGame(g, 0, w, mult); err != nil {
		t.Fatalf("valid game rejected: %v", err)
	}
	if _, err := NewGame(g, 9, w, mult); err == nil {
		t.Error("bad root accepted")
	}
	if _, err := NewGame(g, 0, w[:2], mult); err == nil {
		t.Error("short weights accepted")
	}
	if _, err := NewGame(g, 0, []*big.Rat{RI(-1), RI(1), RI(1)}, mult); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewGame(g, 0, w, []*big.Int{I(1), I(1), I(1)}); err == nil {
		t.Error("nonzero root multiplicity accepted")
	}
	if _, err := NewGame(g, 0, w, []*big.Int{I(0), I(0), I(1)}); err == nil {
		t.Error("zero multiplicity accepted")
	}
	if _, err := NewGame(g, 0, w, mult[:2]); err == nil {
		t.Error("short multiplicities accepted")
	}
}

func TestSubsidyBasics(t *testing.T) {
	g := graph.Cycle(2, 1)
	eg, err := NewGame(g, 0, []*big.Rat{RI(2), RI(2), RI(2)}, []*big.Int{I(0), I(1), I(1)})
	if err != nil {
		t.Fatal(err)
	}
	var nilSub Subsidy
	if nilSub.At(0).Sign() != 0 || nilSub.Validate(eg) != nil {
		t.Error("nil subsidy misbehaves")
	}
	b := make(Subsidy, 3)
	b[0] = RI(1)
	if b.Cost().Cmp(RI(1)) != 0 {
		t.Error("Cost wrong")
	}
	if err := b.Validate(eg); err != nil {
		t.Errorf("valid subsidy rejected: %v", err)
	}
	b[1] = RI(5)
	if err := b.Validate(eg); err == nil {
		t.Error("oversubsidy accepted")
	}
	b[1] = RI(-1)
	if err := b.Validate(eg); err == nil {
		t.Error("negative subsidy accepted")
	}
	if err := (Subsidy{RI(0)}).Validate(eg); err == nil {
		t.Error("short subsidy accepted")
	}
}

// TestExactMatchesFloatEngine: on random small-integer-weight games the
// exact verdicts must coincide with the float engine's.
func TestExactMatchesFloatEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 80; trial++ {
		n := 3 + rng.Intn(5)
		g := graph.RandomConnected(rng, n, 0.5, 0, 0) // weights set below
		for id := 0; id < g.M(); id++ {
			g.SetWeight(id, float64(1+rng.Intn(9)))
		}
		root := rng.Intn(n)
		mult := make([]int64, n)
		multBig := make([]*big.Int, n)
		for v := range mult {
			if v != root {
				mult[v] = 1 + int64(rng.Intn(3))
			}
			multBig[v] = I(mult[v])
		}
		w := make([]*big.Rat, g.M())
		for id := range w {
			w[id] = RI(int64(g.Weight(id)))
		}
		bg, err := broadcast.NewGameMult(g, root, mult)
		if err != nil {
			t.Fatal(err)
		}
		eg, err := NewGame(g, root, w, multBig)
		if err != nil {
			t.Fatal(err)
		}
		var trees [][]int
		if _, err := graph.EnumerateSpanningTrees(g, 300, func(tr []int) bool {
			trees = append(trees, tr)
			return true
		}); err != nil {
			continue
		}
		tree := trees[rng.Intn(len(trees))]
		fst, err := broadcast.NewState(bg, tree)
		if err != nil {
			t.Fatal(err)
		}
		est, err := NewState(eg, tree)
		if err != nil {
			t.Fatal(err)
		}
		// Integer (hence float-exact) subsidies on some tree edges.
		var fb game.Subsidy
		var eb Subsidy
		if rng.Intn(2) == 0 {
			fb = game.ZeroSubsidy(g)
			eb = make(Subsidy, g.M())
			for _, id := range tree {
				k := rng.Intn(int(g.Weight(id)) + 1)
				fb[id] = float64(k)
				eb[id] = RI(int64(k))
			}
		}
		if got, want := est.IsEquilibrium(eb), fst.IsEquilibrium(fb); got != want {
			t.Fatalf("trial %d: exact %v vs float %v", trial, got, want)
		}
		// Costs agree.
		for v := 0; v < n; v++ {
			if v == root {
				continue
			}
			ec, _ := est.PlayerCost(v, eb).Float64()
			fc := fst.PlayerCost(v, fb)
			if diff := ec - fc; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial %d: cost mismatch at node %d: %v vs %v", trial, v, ec, fc)
			}
		}
		// Usage counts agree.
		for _, id := range tree {
			if est.NA[id].Int64() != fst.NA[id] {
				t.Fatalf("trial %d: usage mismatch on edge %d", trial, id)
			}
		}
	}
}

func TestHugeMultiplicities(t *testing.T) {
	// A star where one leaf hosts 10^40 players: the shared edge becomes
	// essentially free for everyone, while a lone player's alternative
	// keeps its full price. Exact arithmetic must handle this regime.
	g := graph.New(3)
	e0 := g.AddEdge(0, 1, 1) // root–hub
	e1 := g.AddEdge(1, 2, 1) // hub–leaf
	e2 := g.AddEdge(0, 2, 1) // direct root–leaf
	huge := new(big.Int).Exp(I(10), I(40), nil)
	eg, err := NewGame(g, 0,
		[]*big.Rat{RI(1), RI(1), RI(2)},
		[]*big.Int{I(0), huge, I(1)})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(eg, []int{e0, e1})
	if err != nil {
		t.Fatal(err)
	}
	// Usage of the root edge is huge+1.
	if st.NA[e0].Cmp(AddI(huge, I(1))) != 0 {
		t.Error("huge usage count wrong")
	}
	// Player at the leaf pays 1/1 (own edge) + 1/(huge+1): < 2, so she
	// does not deviate to the weight-2 direct edge; equilibrium.
	if !st.IsEquilibrium(nil) {
		t.Error("tree should be an equilibrium")
	}
	_ = e2
	// Weight of tree exact.
	if st.Weight().Cmp(RI(2)) != 0 {
		t.Error("weight wrong")
	}
}

func TestExactTieIsNotViolation(t *testing.T) {
	// Player indifferent between tree path and deviation: exactly equal
	// costs must count as equilibrium (constraints are ≤).
	g := graph.New(3)
	g.AddEdge(0, 1, 2) // tree
	g.AddEdge(1, 2, 2) // tree
	g.AddEdge(0, 2, 3) // deviation: player 2 pays 3 vs tree 2/1 + 2/2 = 3
	eg, err := NewGame(g, 0,
		[]*big.Rat{RI(2), RI(2), RI(3)},
		[]*big.Int{I(0), I(1), I(1)})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(eg, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v := st.FindViolation(nil); v != nil {
		t.Errorf("tie reported as violation: %v", v)
	}
	// Tighten the alternative by any ε and the deviation appears.
	eg.W[2] = R(299, 100)
	if v := st.FindViolation(nil); v == nil {
		t.Error("strictly better deviation missed")
	} else if v.Node != 2 || v.ViaEdge != 2 {
		t.Errorf("wrong violation: %v", v)
	} else if v.String() == "" {
		t.Error("violation string empty")
	}
}

func TestNumPlayers(t *testing.T) {
	g := graph.Path(2, 1)
	eg, err := NewGame(g, 0, []*big.Rat{RI(1), RI(1)}, []*big.Int{I(0), I(3), I(4)})
	if err != nil {
		t.Fatal(err)
	}
	if eg.NumPlayers().Int64() != 7 {
		t.Errorf("NumPlayers = %v", eg.NumPlayers())
	}
}

func TestViolationsListsAll(t *testing.T) {
	// A path tree on a 5-cycle: several tail players prefer the closing
	// edge; Violations must report every violated row and agree with
	// FindViolation about emptiness.
	g := graph.Cycle(4, 1)
	w := make([]*big.Rat, g.M())
	for i := range w {
		w[i] = RI(1)
	}
	mult := []*big.Int{I(0), I(1), I(1), I(1), I(1)}
	eg, err := NewGame(g, 0, w, mult)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(eg, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	vs := st.Violations(nil)
	if len(vs) == 0 {
		t.Fatal("expected violations on the path tree")
	}
	if st.FindViolation(nil) == nil {
		t.Fatal("FindViolation disagrees with Violations")
	}
	for _, v := range vs {
		if v.Current.Cmp(v.Better) <= 0 {
			t.Errorf("non-violation reported: %v", &v)
		}
	}
	// Full subsidies: both must report clean.
	b := make(Subsidy, g.M())
	for _, id := range st.Tree.EdgeIDs {
		b[id] = RI(1)
	}
	if len(st.Violations(b)) != 0 || !st.IsEquilibrium(b) {
		t.Error("violations under full subsidies")
	}
}
