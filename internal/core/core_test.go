package core

import (
	"math"
	"testing"

	"netdesign/internal/graph"
	"netdesign/internal/numeric"
)

// TestFacadeEndToEnd drives the whole public API on the Theorem-11 cycle.
func TestFacadeEndToEnd(t *testing.T) {
	n := 12
	g := graph.Cycle(n, 1)
	bg, err := NewBroadcastGame(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	tree := make([]int, n)
	for i := range tree {
		tree[i] = i
	}
	st, err := NewTreeState(bg, tree)
	if err != nil {
		t.Fatal(err)
	}
	if IsEquilibrium(st, nil) {
		t.Fatal("path tree should not be an equilibrium for free")
	}

	lp, err := MinimumSubsidies(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(st, lp.Subsidy); err != nil {
		t.Fatal(err)
	}

	b6, cert, err := EnforceWithinOneOverE(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(st, b6); err != nil {
		t.Fatal(err)
	}
	if lp.Cost > cert.Total+1e-9 {
		t.Errorf("LP %v above Theorem-6 cost %v", lp.Cost, cert.Total)
	}
	if !numeric.AlmostEqual(cert.Total, float64(n)/math.E) {
		t.Errorf("Theorem-6 cost %v ≠ n/e", cert.Total)
	}

	aon, err := MinimumAONSubsidies(st)
	if err != nil {
		t.Fatal(err)
	}
	if aon.Cost < lp.Cost-1e-9 {
		t.Errorf("AON %v below fractional optimum %v", aon.Cost, lp.Cost)
	}
	if err := Verify(st, aon.Subsidy); err != nil {
		t.Fatal(err)
	}

	mst, err := MinimumSpanningTree(bg)
	if err != nil || len(mst) != n {
		t.Fatalf("MST: %v %v", mst, err)
	}

	pos, err := PriceOfStability(bg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pos != 1 {
		t.Errorf("cycle PoS = %v, want 1 (balanced splits are free equilibria)", pos)
	}

	des, err := DesignNetwork(bg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if des.Weight != float64(n) || des.SubsidyCost > 1e-9 {
		t.Errorf("design %+v", des)
	}
	heu, err := DesignNetworkHeuristic(bg, 100)
	if err != nil {
		t.Fatal(err)
	}
	if heu.Weight != float64(n) {
		t.Errorf("heuristic design %+v", heu)
	}
}

func TestNewGraphAlias(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	bg, err := NewBroadcastGame(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bg.NumPlayers() != 2 {
		t.Errorf("players = %d", bg.NumPlayers())
	}
}

func TestFacadeCertificatesAndShadowPrices(t *testing.T) {
	g := graph.Cycle(8, 1)
	bg, err := NewBroadcastGame(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ProveHnBound(bg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cert.Verify(); err != nil {
		t.Fatal(err)
	}
	tree := []int{0, 1, 2, 3, 4, 5, 6, 7}
	st, err := NewTreeState(bg, tree)
	if err != nil {
		t.Fatal(err)
	}
	binding, res, err := BindingDeviations(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(binding) == 0 || res.Cost <= 0 {
		t.Errorf("expected binding threats on the cycle path: %v, cost %v", binding, res.Cost)
	}
}
