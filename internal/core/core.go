// Package core is the library's public facade: it re-exports the main
// types and wires the paper's headline operations — computing minimum
// subsidies (SNE, Theorem 1), enforcing an MST within the 1/e bound
// (Theorem 6), exact all-or-nothing enforcement (Section 5) and budgeted
// network design (SND) — behind a small, stable API. Examples and
// command-line tools program against this package; research code that
// needs knobs can reach into the focused packages underneath.
package core

import (
	"netdesign/internal/broadcast"
	"netdesign/internal/game"
	"netdesign/internal/graph"
	"netdesign/internal/snd"
	"netdesign/internal/sne"
	"netdesign/internal/subsidy"
)

// Core graph and game types, aliased for one-import consumption.
type (
	// Graph is an undirected weighted multigraph.
	Graph = graph.Graph
	// BroadcastGame is a broadcast network design game.
	BroadcastGame = broadcast.Game
	// TreeState is a spanning-tree strategy profile of a broadcast game.
	TreeState = broadcast.State
	// Subsidy maps edge IDs to subsidy amounts in [0, w].
	Subsidy = game.Subsidy
	// EnforceResult is a subsidy assignment plus solver metadata.
	EnforceResult = sne.Result
	// DesignResult is a network design: tree + enforcing subsidies.
	DesignResult = snd.Result
	// Certificate is the audit trail of the Theorem-6 construction.
	Certificate = subsidy.Certificate
)

// NewGraph returns an empty graph on n nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewBroadcastGame builds a broadcast game with one player per non-root
// node.
func NewBroadcastGame(g *Graph, root int) (*BroadcastGame, error) {
	return broadcast.NewGame(g, root)
}

// NewTreeState adopts treeEdges as the strategy profile of bg.
func NewTreeState(bg *BroadcastGame, treeEdges []int) (*TreeState, error) {
	return broadcast.NewState(bg, treeEdges)
}

// MinimumSpanningTree returns a socially optimal design of the game.
func MinimumSpanningTree(bg *BroadcastGame) ([]int, error) { return bg.MST() }

// IsEquilibrium reports whether the tree state is a Nash equilibrium of
// the game extended with subsidies b (nil means no subsidies).
func IsEquilibrium(st *TreeState, b Subsidy) bool { return st.IsEquilibrium(b) }

// MinimumSubsidies solves STABLE NETWORK ENFORCEMENT optimally for a
// broadcast state via the paper's LP (3): the cheapest fractional subsidy
// assignment under which the tree is an equilibrium.
func MinimumSubsidies(st *TreeState) (*EnforceResult, error) {
	return sne.SolveBroadcastLP(st)
}

// EnforceWithinOneOverE runs the Theorem-6 construction: the returned
// assignment enforces the minimum spanning tree state at cost exactly
// wgt(T)/e (at most wgt(T)/e with player multiplicities above one).
func EnforceWithinOneOverE(st *TreeState) (Subsidy, *Certificate, error) {
	return subsidy.Enforce(st)
}

// MinimumAONSubsidies solves the all-or-nothing variant exactly by
// branch-and-bound: every edge is either fully subsidized or not at all.
func MinimumAONSubsidies(st *TreeState) (*EnforceResult, error) {
	return sne.SolveAON(st, sne.AONOptions{})
}

// DesignNetwork solves STABLE NETWORK DESIGN exactly on small instances:
// the lightest tree enforceable within the subsidy budget. treeLimit
// bounds the spanning-tree enumeration (≤ 0 means unlimited).
func DesignNetwork(bg *BroadcastGame, budget float64, treeLimit int) (*DesignResult, error) {
	return snd.SolveExact(bg, budget, treeLimit)
}

// DesignNetworkHeuristic proposes the MST with its LP-optimal enforcement
// — the polynomial-time design of choice when enumeration is infeasible.
func DesignNetworkHeuristic(bg *BroadcastGame, budget float64) (*DesignResult, error) {
	return snd.HeuristicMSTLP(bg, budget)
}

// PriceOfStability computes the exact spanning-tree price of stability by
// enumeration (small instances; treeLimit ≤ 0 means unlimited).
func PriceOfStability(bg *BroadcastGame, treeLimit int) (float64, error) {
	a, err := broadcast.AnalyzeTrees(bg, nil, treeLimit)
	if err != nil {
		return 0, err
	}
	return a.PoS(), nil
}

// Verify independently confirms that b enforces st (bounds + Lemma-2
// equilibrium check). Use it to audit any result before deployment.
func Verify(st *TreeState, b Subsidy) error { return sne.VerifyBroadcast(st, b) }

// ProveHnBound constructs the classical certificate that the game's
// price of stability is at most H_n: best-response descent from the MST
// reaches an equilibrium of cost ≤ Φ(MST) ≤ H_n·wgt(MST).
func ProveHnBound(bg *BroadcastGame) (*broadcast.HnCertificate, error) {
	return broadcast.ProveHnBound(bg, 0)
}

// BindingDeviations reports the defection threats that pin down the
// subsidy bill of st, with LP shadow prices (most expensive first).
func BindingDeviations(st *TreeState) ([]sne.BindingDeviation, *EnforceResult, error) {
	return sne.BindingDeviations(st)
}
