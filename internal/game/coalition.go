package game

import (
	"netdesign/internal/graph"
	"netdesign/internal/numeric"
)

// This file implements pairwise coalition deviations — the first step of
// the coalition variation the paper's Section 6 poses as future work
// ("variations of SNE and SND that consider deviations of coalitions of
// players, as opposed to unilateral deviations").
//
// A pair deviation is a joint move by two players after which BOTH are
// strictly better off. States resilient to unilateral and pair deviations
// are 2-strong equilibria; enforcing them can require more subsidies than
// Nash enforcement because the blocking condition is disjunctive (at
// least one member must not gain) and therefore not a single LP row.

// PairViolation is a profitable joint deviation by two players.
type PairViolation struct {
	Players [2]int
	Paths   [2][]int
	Gains   [2]float64 // strictly positive for both
}

// FindPairDeviation searches for a profitable pair deviation under
// subsidies b, enumerating up to maxPaths simple paths per player
// (≤ 0 for unlimited — exponential; keep instances small). It returns
// nil when the state is 2-strong-stable against pair moves.
func (st *State) FindPairDeviation(b Subsidy, maxPaths int) (*PairViolation, error) {
	gm := st.game
	n := gm.N()
	// Strategy pools per player (current path first so indices align).
	pools := make([][][]int, n)
	for i, tm := range gm.Terminals {
		var paths [][]int
		graph.SimplePaths(gm.G, tm.S, tm.T, maxPaths, func(p []int) bool {
			paths = append(paths, p)
			return true
		})
		pools[i] = paths
	}
	for i := 0; i < n; i++ {
		ci := st.PlayerCost(i, b)
		for j := i + 1; j < n; j++ {
			cj := st.PlayerCost(j, b)
			for _, pi := range pools[i] {
				for _, pj := range pools[j] {
					niCost, njCost := st.jointCosts(i, pi, j, pj, b)
					if numeric.Less(niCost, ci) && numeric.Less(njCost, cj) {
						return &PairViolation{
							Players: [2]int{i, j},
							Paths:   [2][]int{pi, pj},
							Gains:   [2]float64{ci - niCost, cj - njCost},
						}, nil
					}
				}
			}
		}
	}
	return nil, nil
}

// jointCosts returns the costs of players i and j after they jointly
// switch to paths pi and pj with everyone else fixed.
func (st *State) jointCosts(i int, pi []int, j int, pj []int, b Subsidy) (float64, float64) {
	g := st.game.G
	onPi := make(map[int]bool, len(pi))
	for _, id := range pi {
		onPi[id] = true
	}
	onPj := make(map[int]bool, len(pj))
	for _, id := range pj {
		onPj[id] = true
	}
	// usage after the joint move = old usage − (i used) − (j used)
	//                              + (i uses now) + (j uses now).
	usageAfter := func(id int) int {
		u := st.usage[id]
		if st.uses[i][id] {
			u--
		}
		if st.uses[j][id] {
			u--
		}
		if onPi[id] {
			u++
		}
		if onPj[id] {
			u++
		}
		return u
	}
	cost := func(path []int) float64 {
		sum := 0.0
		for _, id := range path {
			sum += (g.Weight(id) - b.At(id)) / float64(usageAfter(id))
		}
		return sum
	}
	return cost(pi), cost(pj)
}

// IsPairStable reports whether st is a Nash equilibrium that additionally
// resists every pair deviation (a 2-strong equilibrium over the sampled
// strategy pools).
func (st *State) IsPairStable(b Subsidy, maxPaths int) (bool, error) {
	if !st.IsEquilibrium(b) {
		return false, nil
	}
	v, err := st.FindPairDeviation(b, maxPaths)
	if err != nil {
		return false, err
	}
	return v == nil, nil
}
