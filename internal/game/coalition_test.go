package game

import (
	"math/rand"
	"testing"

	"netdesign/internal/graph"
	"netdesign/internal/numeric"
)

// TestPairDeviationClassic: two players on a shared expensive edge are
// unilaterally stable but can jointly migrate to a cheaper edge.
func TestPairDeviationClassic(t *testing.T) {
	g := graph.New(2)
	cheap := g.AddEdge(0, 1, 2.5)
	costly := g.AddEdge(0, 1, 3)
	gm, err := New(g, []Terminal{{S: 0, T: 1}, {S: 0, T: 1}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(gm, [][]int{{costly}, {costly}})
	if err != nil {
		t.Fatal(err)
	}
	// Unilaterally stable: leaving costs 2.5 > 1.5.
	if !st.IsEquilibrium(nil) {
		t.Fatal("state should be a Nash equilibrium")
	}
	// Jointly unstable: both moving pays 1.25 < 1.5 each.
	v, err := st.FindPairDeviation(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("pair deviation to the cheap edge should exist")
	}
	if !numeric.AlmostEqual(v.Gains[0], 0.25) || !numeric.AlmostEqual(v.Gains[1], 0.25) {
		t.Errorf("gains = %v", v.Gains)
	}
	if len(v.Paths[0]) != 1 || v.Paths[0][0] != cheap {
		t.Errorf("deviation paths = %v", v.Paths)
	}
	stable, err := st.IsPairStable(nil, 0)
	if err != nil || stable {
		t.Errorf("IsPairStable = %v %v, want false", stable, err)
	}
	// Subsidizing the expensive edge down to an effective 2.4 restores
	// 2-strong stability (sharing 1.2 each beats 1.25).
	sub := ZeroSubsidy(g)
	sub[costly] = 0.6
	stable, err = st.IsPairStable(sub, 0)
	if err != nil || !stable {
		t.Errorf("subsidized IsPairStable = %v %v, want true", stable, err)
	}
}

// TestPairStableImpliesNash: the 2-strong check subsumes the Nash check.
func TestPairStableImpliesNash(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 3)
	gm, _ := New(g, []Terminal{{S: 0, T: 1}, {S: 0, T: 1}})
	st, _ := NewState(gm, [][]int{{1}, {1}}) // both on the expensive edge
	// Not even a Nash equilibrium (solo move to the cheap edge pays 1).
	stable, err := st.IsPairStable(nil, 0)
	if err != nil || stable {
		t.Errorf("non-Nash state reported pair-stable")
	}
}

// TestPairDeviationMatchesReplacePair: joint cost computation must agree
// with literally rebuilding the state with both paths replaced.
func TestPairDeviationMatchesReplacePair(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(3)
		g := graph.RandomConnected(rng, n, 0.7, 0.5, 2)
		gm, err := New(g, []Terminal{{S: 0, T: n - 1}, {S: 1, T: n - 1}, {S: 2, T: n - 1}})
		if err != nil {
			t.Fatal(err)
		}
		paths := make([][]int, 3)
		for i, tm := range gm.Terminals {
			paths[i] = graph.Dijkstra(g, tm.S, nil).PathTo(tm.T)
		}
		st, err := NewState(gm, paths)
		if err != nil {
			t.Fatal(err)
		}
		var alts0, alts1 [][]int
		graph.SimplePaths(g, 0, n-1, 10, func(p []int) bool { alts0 = append(alts0, p); return true })
		graph.SimplePaths(g, 1, n-1, 10, func(p []int) bool { alts1 = append(alts1, p); return true })
		for _, p0 := range alts0 {
			for _, p1 := range alts1 {
				c0, c1 := st.jointCosts(0, p0, 1, p1, nil)
				mid, err := st.Replace(0, p0)
				if err != nil {
					t.Fatal(err)
				}
				both, err := mid.Replace(1, p1)
				if err != nil {
					t.Fatal(err)
				}
				if !numeric.AlmostEqual(c0, both.PlayerCost(0, nil)) ||
					!numeric.AlmostEqual(c1, both.PlayerCost(1, nil)) {
					t.Fatalf("trial %d: joint costs (%v,%v) vs replaced (%v,%v)",
						trial, c0, c1, both.PlayerCost(0, nil), both.PlayerCost(1, nil))
				}
			}
		}
	}
}

// TestNashOftenPairStable: on random broadcast-style games, states that
// are Nash equilibria are frequently (not always) pair-stable; the test
// asserts consistency of the two predicates rather than a rate.
func TestNashOftenPairStable(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	checked := 0
	for trial := 0; trial < 20 && checked < 8; trial++ {
		n := 3 + rng.Intn(3)
		g := graph.RandomConnected(rng, n, 0.5, 0.5, 2)
		var terms []Terminal
		for i := 1; i < n; i++ {
			terms = append(terms, Terminal{S: i, T: 0})
		}
		gm, err := New(g, terms)
		if err != nil {
			t.Fatal(err)
		}
		paths := make([][]int, len(terms))
		for i, tm := range terms {
			paths[i] = graph.Dijkstra(g, tm.S, nil).PathTo(tm.T)
		}
		st, err := NewState(gm, paths)
		if err != nil {
			t.Fatal(err)
		}
		res, err := BestResponseDynamics(st, nil, RoundRobin, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		stable, err := res.Final.IsPairStable(nil, 40)
		if err != nil {
			t.Fatal(err)
		}
		if stable && !res.Final.IsEquilibrium(nil) {
			t.Fatal("pair-stable state is not Nash — predicate inconsistency")
		}
		checked++
	}
	if checked == 0 {
		t.Error("no instances checked")
	}
}
