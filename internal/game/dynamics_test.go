package game

import (
	"math/rand"
	"testing"

	"netdesign/internal/graph"
	"netdesign/internal/numeric"
)

// randomGameState builds a random multi-terminal game with every player
// on some simple path (a shortest path, for validity).
func randomGameState(t *testing.T, rng *rand.Rand, n, players int) *State {
	t.Helper()
	g := graph.RandomConnected(rng, n, 0.4, 0.5, 2)
	terms := make([]Terminal, players)
	paths := make([][]int, players)
	for i := range terms {
		s := rng.Intn(n)
		d := rng.Intn(n)
		for d == s {
			d = rng.Intn(n)
		}
		terms[i] = Terminal{S: s, T: d}
		sp := graph.Dijkstra(g, s, nil)
		paths[i] = sp.PathTo(d)
	}
	gm, err := New(g, terms)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(gm, paths)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestDynamicsIncrementalVsNaive: the incremental walk and the
// rebuild-per-step oracle must both reach Nash equilibria with strictly
// descending potentials; with deterministic orders they must take the
// same number of steps and land on the same potential (the two Dijkstra
// variants may break exact-cost ties differently, so paths are compared
// through their costs, not edge by edge).
func TestDynamicsIncrementalVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		st := randomGameState(t, rng, 5+rng.Intn(6), 2+rng.Intn(3))
		for _, order := range []Order{RoundRobin, MaxGain} {
			fast, err := BestResponseDynamics(st, nil, order, nil, 0)
			if err != nil {
				t.Fatalf("trial %d: incremental: %v", trial, err)
			}
			slow, err := BestResponseDynamicsNaive(st, nil, order, nil, 0)
			if err != nil {
				t.Fatalf("trial %d: naive: %v", trial, err)
			}
			if !fast.Final.IsEquilibrium(nil) {
				t.Fatalf("trial %d: incremental final is not an equilibrium", trial)
			}
			if !slow.Final.IsEquilibrium(nil) {
				t.Fatalf("trial %d: naive final is not an equilibrium", trial)
			}
			for i := 1; i < len(fast.Potentials); i++ {
				if fast.Potentials[i] >= fast.Potentials[i-1] {
					t.Fatalf("trial %d: incremental potential did not descend at step %d", trial, i)
				}
			}
			if fast.Steps != slow.Steps {
				t.Fatalf("trial %d order %d: steps %d vs naive %d", trial, order, fast.Steps, slow.Steps)
			}
			last := len(fast.Potentials) - 1
			if !numeric.AlmostEqualTol(fast.Potentials[last], slow.Potentials[last], 1e-9) {
				t.Fatalf("trial %d order %d: final potential %v vs naive %v",
					trial, order, fast.Potentials[last], slow.Potentials[last])
			}
		}
	}
}

// TestDynamicsDoesNotMutateInput: the incremental walk must leave the
// start state untouched (it clones).
func TestDynamicsDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	st := randomGameState(t, rng, 8, 3)
	before := make([][]int, len(st.Paths))
	for i, p := range st.Paths {
		before[i] = append([]int(nil), p...)
	}
	pot := st.Potential(nil)
	if _, err := BestResponseDynamics(st, nil, RoundRobin, nil, 0); err != nil {
		t.Fatal(err)
	}
	for i, p := range st.Paths {
		if len(p) != len(before[i]) {
			t.Fatalf("player %d path changed", i)
		}
		for j := range p {
			if p[j] != before[i][j] {
				t.Fatalf("player %d path changed", i)
			}
		}
	}
	if st.Potential(nil) != pot {
		t.Fatal("input state potential changed")
	}
}

// TestCloneIndependence: mutating a clone's paths must not leak into the
// original's usage counts or path storage.
func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	st := randomGameState(t, rng, 8, 3)
	cp := st.Clone()
	path, cost := cp.BestResponse(0, nil)
	if path == nil {
		t.Skip("no path")
	}
	_ = cost
	cp.applyMove(0, path)
	total := 0
	for _, u := range st.usage {
		total += u
	}
	want := 0
	for _, p := range st.Paths {
		want += len(p)
	}
	if total != want {
		t.Fatalf("original usage corrupted: %d units for %d path edges", total, want)
	}
}
