// Package game implements general fair-cost-sharing network design games
// (Anshelevich et al.): each player selects a path between her terminals,
// and every established edge's (possibly subsidized) weight is split
// evenly among the players using it.
//
// The package provides states, costs, the Rosenthal potential,
// best-response computation via Dijkstra on marginal cost shares,
// equilibrium checking, best-response dynamics and brute-force
// price-of-anarchy/stability analysis for small instances. Broadcast
// games — the paper's focus — have a faster specialized engine in
// package broadcast; this general engine doubles as its test oracle.
package game

import (
	"fmt"

	"netdesign/internal/graph"
)

// Terminal is a player's source-destination pair.
type Terminal struct {
	S, T int
}

// Game is a network design game: a weighted undirected graph plus one
// terminal pair per player.
type Game struct {
	G         *graph.Graph
	Terminals []Terminal
}

// New validates terminals and returns a game.
func New(g *graph.Graph, terminals []Terminal) (*Game, error) {
	for i, tm := range terminals {
		if tm.S < 0 || tm.S >= g.N() || tm.T < 0 || tm.T >= g.N() {
			return nil, fmt.Errorf("game: player %d terminals out of range", i)
		}
		if tm.S == tm.T {
			return nil, fmt.Errorf("game: player %d has equal terminals", i)
		}
	}
	return &Game{G: g, Terminals: terminals}, nil
}

// N returns the number of players.
func (gm *Game) N() int { return len(gm.Terminals) }

// State is a strategy profile: one path (as an ordered edge-ID list from
// S to T) per player, with cached usage counts.
type State struct {
	game  *Game
	Paths [][]int
	usage []int    // usage[edgeID] = number of players using the edge
	uses  [][]bool // uses[i][edgeID]
}

// NewState validates the profile (each path must be a simple S→T path)
// and caches usage counts.
func NewState(gm *Game, paths [][]int) (*State, error) {
	if len(paths) != gm.N() {
		return nil, fmt.Errorf("game: %d paths for %d players", len(paths), gm.N())
	}
	st := &State{
		game:  gm,
		Paths: paths,
		usage: make([]int, gm.G.M()),
		uses:  make([][]bool, gm.N()),
	}
	for i, p := range paths {
		if err := validatePath(gm.G, gm.Terminals[i], p); err != nil {
			return nil, fmt.Errorf("game: player %d: %w", i, err)
		}
		st.uses[i] = make([]bool, gm.G.M())
		for _, id := range p {
			st.uses[i][id] = true
			st.usage[id]++
		}
	}
	return st, nil
}

// validatePath checks p is a simple walk from tm.S to tm.T.
func validatePath(g *graph.Graph, tm Terminal, p []int) error {
	if len(p) == 0 {
		return fmt.Errorf("empty path")
	}
	cur := tm.S
	visited := map[int]bool{cur: true}
	for _, id := range p {
		if id < 0 || id >= g.M() {
			return fmt.Errorf("edge %d out of range", id)
		}
		e := g.Edge(id)
		var next int
		switch cur {
		case e.U:
			next = e.V
		case e.V:
			next = e.U
		default:
			return fmt.Errorf("edge %d does not continue the path at node %d", id, cur)
		}
		if visited[next] {
			return fmt.Errorf("path revisits node %d", next)
		}
		visited[next] = true
		cur = next
	}
	if cur != tm.T {
		return fmt.Errorf("path ends at %d, want %d", cur, tm.T)
	}
	return nil
}

// Game returns the underlying game.
func (st *State) Game() *Game { return st.game }

// Usage returns the number of players using the given edge.
func (st *State) Usage(edgeID int) int { return st.usage[edgeID] }

// Uses reports whether player i uses the given edge.
func (st *State) Uses(i, edgeID int) bool { return st.uses[i][edgeID] }

// EstablishedEdges returns the IDs of edges used by at least one player —
// the network the state establishes.
func (st *State) EstablishedEdges() []int {
	var ids []int
	for id, u := range st.usage {
		if u > 0 {
			ids = append(ids, id)
		}
	}
	return ids
}

// EstablishedWeight is the social cost of the state: the total weight of
// established edges. Subsidies do not change it — they change who pays.
func (st *State) EstablishedWeight() float64 {
	return st.game.G.WeightOf(st.EstablishedEdges())
}

// Replace returns a copy of st in which player i uses path p.
func (st *State) Replace(i int, p []int) (*State, error) {
	paths := make([][]int, len(st.Paths))
	copy(paths, st.Paths)
	paths[i] = p
	return NewState(st.game, paths)
}

// Clone returns a deep copy of st that owns all of its path storage, so
// in-place moves on the clone never alias the original's slices. The
// incremental best-response dynamics clone their start state once and
// then mutate only the copy.
func (st *State) Clone() *State {
	cp := &State{
		game:  st.game,
		Paths: make([][]int, len(st.Paths)),
		usage: append([]int(nil), st.usage...),
		uses:  make([][]bool, len(st.uses)),
	}
	for i, p := range st.Paths {
		cp.Paths[i] = append([]int(nil), p...)
	}
	for i, u := range st.uses {
		cp.uses[i] = append([]bool(nil), u...)
	}
	return cp
}

// applyMove switches player i onto path p in place: usage counts and the
// per-player edge sets are patched along the old and new paths only —
// O(|old| + |new|), no state rebuild. p is copied into storage owned by
// the state, so callers may reuse its backing array. The caller must
// guarantee p is a valid simple path for player i (best responses from
// Dijkstra are); the state must own its path storage (see Clone).
func (st *State) applyMove(i int, p []int) {
	old := st.Paths[i]
	for _, id := range old {
		st.uses[i][id] = false
		st.usage[id]--
	}
	st.Paths[i] = append(old[:0], p...)
	for _, id := range st.Paths[i] {
		st.uses[i][id] = true
		st.usage[id]++
	}
}
