package game

import (
	"fmt"

	"netdesign/internal/graph"
	"netdesign/internal/numeric"
)

// Subsidy assigns an amount b_a ∈ [0, w_a] to every edge (indexed by edge
// ID). The zero value of an entry means the edge is unsubsidized. A nil
// Subsidy is treated everywhere as all-zero.
type Subsidy []float64

// ZeroSubsidy returns an all-zero assignment sized for g.
func ZeroSubsidy(g *graph.Graph) Subsidy { return make(Subsidy, g.M()) }

// At returns b_a, treating nil as zero.
func (b Subsidy) At(edgeID int) float64 {
	if b == nil {
		return 0
	}
	return b[edgeID]
}

// Cost returns the total amount of subsidies Σ_a b_a.
func (b Subsidy) Cost() float64 {
	sum := 0.0
	for _, v := range b {
		sum += v
	}
	return sum
}

// CostOn returns the subsidies restricted to the given edge set, b(A).
func (b Subsidy) CostOn(ids []int) float64 {
	sum := 0.0
	for _, id := range ids {
		sum += b.At(id)
	}
	return sum
}

// Validate checks 0 ≤ b_a ≤ w_a for every edge (within tolerance).
func (b Subsidy) Validate(g *graph.Graph) error {
	if b == nil {
		return nil
	}
	if len(b) != g.M() {
		return fmt.Errorf("game: subsidy has %d entries for %d edges", len(b), g.M())
	}
	for id, v := range b {
		w := g.Weight(id)
		if v < -numeric.Eps || v > w+numeric.Eps*(1+w) {
			return fmt.Errorf("game: subsidy %v on edge %d outside [0,%v]", v, id, w)
		}
	}
	return nil
}

// IsAllOrNothing reports whether every entry is 0 or the full edge weight
// (within tolerance) — the integral regime of Section 5 of the paper.
func (b Subsidy) IsAllOrNothing(g *graph.Graph) bool {
	if b == nil {
		return true
	}
	for id, v := range b {
		if !numeric.AlmostEqual(v, 0) && !numeric.AlmostEqual(v, g.Weight(id)) {
			return false
		}
	}
	return true
}

// Clamp snaps entries into [0, w_a], removing tolerance-level excursions
// produced by LP round-off.
func (b Subsidy) Clamp(g *graph.Graph) {
	for id := range b {
		b[id] = numeric.Clamp(b[id], 0, g.Weight(id))
	}
}

// Clone returns a copy of b (nil stays nil).
func (b Subsidy) Clone() Subsidy {
	if b == nil {
		return nil
	}
	return append(Subsidy(nil), b...)
}
