package game

import (
	"math"
	"math/rand"
	"testing"

	"netdesign/internal/graph"
	"netdesign/internal/numeric"
)

// twoPlayerParallel builds the classic two-parallel-edge game: both
// players connect 0→1 over edge A (weight 1) or edge B (weight 3).
func twoPlayerParallel(t *testing.T) (*Game, int, int) {
	t.Helper()
	g := graph.New(2)
	a := g.AddEdge(0, 1, 1)
	b := g.AddEdge(0, 1, 3)
	gm, err := New(g, []Terminal{{0, 1}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	return gm, a, b
}

func TestNewValidation(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	if _, err := New(g, []Terminal{{0, 5}}); err == nil {
		t.Error("out-of-range terminal accepted")
	}
	if _, err := New(g, []Terminal{{1, 1}}); err == nil {
		t.Error("equal terminals accepted")
	}
}

func TestStateValidation(t *testing.T) {
	gm, a, b := twoPlayerParallel(t)
	if _, err := NewState(gm, [][]int{{a}, {b}}); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
	if _, err := NewState(gm, [][]int{{a}}); err == nil {
		t.Error("wrong path count accepted")
	}
	if _, err := NewState(gm, [][]int{{}, {b}}); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := NewState(gm, [][]int{{a, b}, {b}}); err == nil {
		t.Error("path revisiting its start accepted")
	}
	if _, err := NewState(gm, [][]int{{99}, {b}}); err == nil {
		t.Error("unknown edge accepted")
	}
}

func TestCostsAndUsage(t *testing.T) {
	gm, a, b := twoPlayerParallel(t)
	both, _ := NewState(gm, [][]int{{a}, {a}})
	if both.Usage(a) != 2 || both.Usage(b) != 0 {
		t.Error("usage counts wrong")
	}
	if c := both.PlayerCost(0, nil); !numeric.AlmostEqual(c, 0.5) {
		t.Errorf("shared cost = %v, want 0.5", c)
	}
	if w := both.EstablishedWeight(); w != 1 {
		t.Errorf("established weight = %v", w)
	}
	split, _ := NewState(gm, [][]int{{a}, {b}})
	if c := split.PlayerCost(1, nil); c != 3 {
		t.Errorf("solo cost = %v", c)
	}
	if w := split.EstablishedWeight(); w != 4 {
		t.Errorf("established weight = %v", w)
	}
	if tc := split.TotalPlayerCost(nil); tc != 4 {
		t.Errorf("total player cost = %v", tc)
	}
	// Sum of player costs equals total weight of established edges.
	sum := both.PlayerCost(0, nil) + both.PlayerCost(1, nil)
	if !numeric.AlmostEqual(sum, both.EstablishedWeight()) {
		t.Errorf("cost shares don't sum to social cost: %v vs %v", sum, both.EstablishedWeight())
	}
}

func TestSubsidizedCosts(t *testing.T) {
	gm, a, b := twoPlayerParallel(t)
	st, _ := NewState(gm, [][]int{{b}, {b}})
	sub := ZeroSubsidy(gm.G)
	sub[b] = 2 // players share only 3-2 = 1
	if c := st.PlayerCost(0, sub); !numeric.AlmostEqual(c, 0.5) {
		t.Errorf("subsidized cost = %v, want 0.5", c)
	}
	_ = a
	if err := sub.Validate(gm.G); err != nil {
		t.Errorf("valid subsidy rejected: %v", err)
	}
	sub[b] = 5
	if err := sub.Validate(gm.G); err == nil {
		t.Error("oversubsidy accepted")
	}
	sub[b] = -1
	if err := sub.Validate(gm.G); err == nil {
		t.Error("negative subsidy accepted")
	}
}

func TestSubsidyHelpers(t *testing.T) {
	g := graph.New(2)
	a := g.AddEdge(0, 1, 2)
	b := g.AddEdge(0, 1, 4)
	var nilSub Subsidy
	if nilSub.At(a) != 0 || nilSub.Cost() != 0 || nilSub.Validate(g) != nil {
		t.Error("nil subsidy misbehaves")
	}
	if !nilSub.IsAllOrNothing(g) || nilSub.Clone() != nil {
		t.Error("nil subsidy AON/clone wrong")
	}
	s := ZeroSubsidy(g)
	s[a] = 2
	if !s.IsAllOrNothing(g) {
		t.Error("full subsidy should be AON")
	}
	s[b] = 1
	if s.IsAllOrNothing(g) {
		t.Error("partial subsidy reported AON")
	}
	if s.Cost() != 3 || s.CostOn([]int{a}) != 2 {
		t.Error("Cost/CostOn wrong")
	}
	s[b] = 4.0000000001
	s.Clamp(g)
	if s[b] > 4 {
		t.Error("Clamp failed")
	}
	cl := s.Clone()
	cl[a] = 0
	if s[a] != 2 {
		t.Error("Clone not independent")
	}
}

func TestBestResponseAndEquilibrium(t *testing.T) {
	gm, a, b := twoPlayerParallel(t)
	// Both on the cheap edge: equilibrium.
	both, _ := NewState(gm, [][]int{{a}, {a}})
	if !both.IsEquilibrium(nil) {
		t.Error("both-on-A should be an equilibrium")
	}
	// Both on the expensive edge: each pays 3/2, deviating to A costs 1:
	// a profitable deviation exists.
	bad, _ := NewState(gm, [][]int{{b}, {b}})
	v := bad.FindViolation(nil)
	if v == nil {
		t.Fatal("both-on-B should not be an equilibrium")
	}
	if !numeric.AlmostEqual(v.Current, 1.5) || !numeric.AlmostEqual(v.Better, 1) {
		t.Errorf("violation costs %v → %v", v.Current, v.Better)
	}
	if g := v.Gain(); !numeric.AlmostEqual(g, 0.5) {
		t.Errorf("gain = %v", g)
	}
	// With a subsidy of 2 on B, sharing B costs 1/2 each: equilibrium.
	sub := ZeroSubsidy(gm.G)
	sub[b] = 2
	if !bad.IsEquilibrium(sub) {
		t.Error("subsidized both-on-B should be an equilibrium")
	}
}

func TestPotentialIdentity(t *testing.T) {
	// Rosenthal's defining property: when one player deviates, the change
	// in her cost equals the change in potential. Checked on random small
	// games, random states and random deviations.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(4)
		g := graph.RandomConnected(rng, n, 0.5, 0.2, 3)
		var terms []Terminal
		np := 1 + rng.Intn(3)
		for i := 0; i < np; i++ {
			s, tt := rng.Intn(n), rng.Intn(n)
			for tt == s {
				tt = rng.Intn(n)
			}
			terms = append(terms, Terminal{s, tt})
		}
		gm, err := New(g, terms)
		if err != nil {
			t.Fatal(err)
		}
		var sub Subsidy
		if rng.Intn(2) == 0 {
			sub = ZeroSubsidy(g)
			for id := range sub {
				sub[id] = rng.Float64() * g.Weight(id)
			}
		}
		// Random initial state via shortest paths w/ random perturbation.
		paths := make([][]int, np)
		for i, tm := range terms {
			sp := graph.Dijkstra(g, tm.S, func(id int) float64 { return g.Weight(id) * (1 + rng.Float64()) })
			paths[i] = sp.PathTo(tm.T)
		}
		st, err := NewState(gm, paths)
		if err != nil {
			t.Fatal(err)
		}
		for dev := 0; dev < 5; dev++ {
			i := rng.Intn(np)
			// Random alternative simple path for player i.
			var alts [][]int
			graph.SimplePaths(g, terms[i].S, terms[i].T, 50, func(p []int) bool {
				alts = append(alts, p)
				return true
			})
			alt := alts[rng.Intn(len(alts))]
			next, err := st.Replace(i, alt)
			if err != nil {
				t.Fatal(err)
			}
			dCost := next.PlayerCost(i, sub) - st.PlayerCost(i, sub)
			dPot := next.Potential(sub) - st.Potential(sub)
			if !numeric.AlmostEqualTol(dCost, dPot, 1e-7) {
				t.Fatalf("trial %d: Δcost %v ≠ Δpotential %v", trial, dCost, dPot)
			}
			st = next
		}
	}
}

func TestDeviationCostMatchesReplace(t *testing.T) {
	// DeviationCost must equal the player's cost in the replaced state.
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(4)
		g := graph.RandomConnected(rng, n, 0.6, 0.5, 2)
		gm, err := New(g, []Terminal{{0, n - 1}, {0, n - 1}, {1, n - 1}})
		if err != nil {
			t.Fatal(err)
		}
		paths := make([][]int, 3)
		for i, tm := range gm.Terminals {
			paths[i] = graph.Dijkstra(g, tm.S, nil).PathTo(tm.T)
		}
		st, err := NewState(gm, paths)
		if err != nil {
			t.Fatal(err)
		}
		var alts [][]int
		graph.SimplePaths(g, 0, n-1, 20, func(p []int) bool { alts = append(alts, p); return true })
		for _, alt := range alts {
			want := st.DeviationCost(0, alt, nil)
			next, err := st.Replace(0, alt)
			if err != nil {
				t.Fatal(err)
			}
			if got := next.PlayerCost(0, nil); !numeric.AlmostEqual(got, want) {
				t.Fatalf("DeviationCost %v vs actual %v", want, got)
			}
		}
	}
}

func TestBestResponseDynamicsConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, order := range []Order{RoundRobin, MaxGain, Random} {
		for trial := 0; trial < 15; trial++ {
			n := 4 + rng.Intn(3)
			g := graph.RandomConnected(rng, n, 0.5, 0.2, 3)
			var terms []Terminal
			for i := 1; i < n; i++ {
				terms = append(terms, Terminal{i, 0})
			}
			gm, err := New(g, terms)
			if err != nil {
				t.Fatal(err)
			}
			paths := make([][]int, len(terms))
			for i, tm := range terms {
				paths[i] = graph.Dijkstra(g, tm.S, func(id int) float64 { return g.Weight(id) * (1 + 2*rng.Float64()) }).PathTo(tm.T)
			}
			st, err := NewState(gm, paths)
			if err != nil {
				t.Fatal(err)
			}
			res, err := BestResponseDynamics(st, nil, order, rng, 10000)
			if err != nil {
				t.Fatalf("order %v: %v", order, err)
			}
			if !res.Final.IsEquilibrium(nil) {
				t.Fatalf("order %v: dynamics ended in a non-equilibrium", order)
			}
			// Potential must be strictly decreasing.
			for k := 1; k < len(res.Potentials); k++ {
				if res.Potentials[k] >= res.Potentials[k-1]+numeric.Eps {
					t.Fatalf("order %v: potential increased at step %d", order, k)
				}
			}
		}
	}
}

func TestAnalyzeParallelEdges(t *testing.T) {
	gm, _, _ := twoPlayerParallel(t)
	a, err := gm.Analyze(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// States: 2×2 = 4; equilibria: both-on-A (and both-on-B is NOT an
	// equilibrium since 1.5 > 1; split states are not equilibria either).
	if a.States != 4 {
		t.Errorf("states = %d", a.States)
	}
	if a.Equilibria != 1 || a.OptWeight != 1 || a.BestEqWeight != 1 {
		t.Errorf("analysis = %+v", a)
	}
	if a.PoS() != 1 || a.PoA() != 1 {
		t.Errorf("PoS %v PoA %v", a.PoS(), a.PoA())
	}
}

func TestAnalyzePoSGreaterThanOne(t *testing.T) {
	// Paper-style example: one player 0→2; direct expensive edge vs
	// cheap 2-hop path... with a single player PoS=1 always; instead use
	// the classic 2-player opt-vs-stability gap: terminals share an edge
	// whose cost splits, but a private cheaper option exists.
	//
	//   0 --1.0-- 2      players: {0→2, 1→2}
	//   1 --1.0-- 2
	//   0 --0.9-- 3 --0.9-- 2   (cheap shared route for player 0 only? )
	//
	// Simpler canonical gap instance: two players with sources 0,1 and
	// common sink 2; middle node 3.
	//   0-3 w=1, 1-3 w=1, 3-2 w=1 (shared trunk), 0-2 w=1.9, 1-2 w=1.9
	// OPT: both via trunk: weight 3. Equilibria include OPT (each pays
	// 1.5 < 1.9 single). Worst equilibrium: both direct = 3.8? Check:
	// direct player pays 1.9; deviating to trunk costs 1+1 = 2 > 1.9, so
	// both-direct is an equilibrium. PoA = 3.8/3.
	g := graph.New(4)
	g.AddEdge(0, 3, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(3, 2, 1)
	g.AddEdge(0, 2, 1.9)
	g.AddEdge(1, 2, 1.9)
	gm, err := New(g, []Terminal{{0, 2}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := gm.Analyze(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(a.OptWeight, 3) {
		t.Errorf("opt = %v", a.OptWeight)
	}
	if !numeric.AlmostEqual(a.BestEqWeight, 3) {
		t.Errorf("best equilibrium = %v", a.BestEqWeight)
	}
	if !numeric.AlmostEqual(a.WorstEq, 3.8) {
		t.Errorf("worst equilibrium = %v", a.WorstEq)
	}
	if !numeric.AlmostEqual(a.PoA(), 3.8/3) {
		t.Errorf("PoA = %v", a.PoA())
	}
}

func TestForEachStateLimit(t *testing.T) {
	g := graph.Complete(5, func(i, j int) float64 { return 1 })
	gm, _ := New(g, []Terminal{{0, 4}, {1, 4}, {2, 4}})
	if _, err := gm.ForEachState(10, func(*State) bool { return true }); err != ErrTooManyStates {
		t.Errorf("err = %v, want ErrTooManyStates", err)
	}
	// Early stop.
	count, err := gm.ForEachState(0, func(*State) bool { return false })
	if err != nil || count != 1 {
		t.Errorf("early stop: %d %v", count, err)
	}
}

func TestStrategiesNoPath(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	gm, _ := New(g, []Terminal{{0, 2}})
	if _, err := gm.Strategies(0); err == nil {
		t.Error("unreachable terminal accepted")
	}
	if _, err := gm.Analyze(nil, 0); err == nil {
		t.Error("Analyze should propagate missing-path error")
	}
}

func TestPotentialBoundsSocialCost(t *testing.T) {
	// wgt(T) ≤ Φ(T) ≤ H_n · wgt(T): the inequality behind the paper's
	// H_n price-of-stability discussion.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(4)
		g := graph.RandomConnected(rng, n, 0.5, 0.1, 2)
		var terms []Terminal
		for i := 1; i < n; i++ {
			terms = append(terms, Terminal{i, 0})
		}
		gm, _ := New(g, terms)
		paths := make([][]int, len(terms))
		for i, tm := range terms {
			paths[i] = graph.Dijkstra(g, tm.S, nil).PathTo(tm.T)
		}
		st, err := NewState(gm, paths)
		if err != nil {
			t.Fatal(err)
		}
		w := st.EstablishedWeight()
		phi := st.Potential(nil)
		hn := numeric.Harmonic(len(terms))
		if phi < w-1e-9 || phi > hn*w+1e-9 {
			t.Fatalf("potential %v outside [wgt, Hn·wgt] = [%v, %v]", phi, w, hn*w)
		}
	}
}

func TestReplaceInvalid(t *testing.T) {
	gm, a, b := twoPlayerParallel(t)
	st, _ := NewState(gm, [][]int{{a}, {b}})
	if _, err := st.Replace(0, []int{}); err == nil {
		t.Error("Replace with empty path accepted")
	}
}

func BenchmarkEquilibriumCheckGeneral(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomConnected(rng, 40, 0.2, 0.5, 3)
	var terms []Terminal
	for i := 1; i < 40; i++ {
		terms = append(terms, Terminal{i, 0})
	}
	gm, _ := New(g, terms)
	paths := make([][]int, len(terms))
	for i, tm := range terms {
		paths[i] = graph.Dijkstra(g, tm.S, nil).PathTo(tm.T)
	}
	st, err := NewState(gm, paths)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.IsEquilibrium(nil)
	}
}

var _ = math.Inf // keep math imported for future edits
