package game

import "netdesign/internal/numeric"

// PlayerCost returns the cost player i experiences in state st under
// subsidies b:  Σ_{a∈T_i} (w_a − b_a)/n_a(T).
func (st *State) PlayerCost(i int, b Subsidy) float64 {
	g := st.game.G
	sum := 0.0
	for _, id := range st.Paths[i] {
		sum += (g.Weight(id) - b.At(id)) / float64(st.usage[id])
	}
	return sum
}

// TotalPlayerCost is Σ_i cost_i = Σ established (w_a − b_a): what the
// players collectively pay after subsidies.
func (st *State) TotalPlayerCost(b Subsidy) float64 {
	g := st.game.G
	sum := 0.0
	for id, u := range st.usage {
		if u > 0 {
			sum += g.Weight(id) - b.At(id)
		}
	}
	return sum
}

// Potential returns Rosenthal's potential Φ(T) = Σ_a Σ_{k=1}^{n_a}
// (w_a − b_a)/k = Σ_a (w_a − b_a)·H_{n_a}. A unilateral deviation changes
// a player's cost by exactly the change in Φ, so local minima of Φ are
// Nash equilibria — the paper's Section 1 recalls this as the engine
// behind the H_n price-of-stability bound.
func (st *State) Potential(b Subsidy) float64 {
	g := st.game.G
	sum := 0.0
	for id, u := range st.usage {
		if u > 0 {
			sum += (g.Weight(id) - b.At(id)) * numeric.Harmonic(u)
		}
	}
	return sum
}

// DeviationCost returns the cost player i would experience by switching
// to path p while everyone else stays:
// Σ_{a∈p} (w_a − b_a)/(n_a(T) + 1 − n_a^i(T)).
func (st *State) DeviationCost(i int, p []int, b Subsidy) float64 {
	g := st.game.G
	sum := 0.0
	for _, id := range p {
		den := st.usage[id] + 1
		if st.uses[i][id] {
			den--
		}
		sum += (g.Weight(id) - b.At(id)) / float64(den)
	}
	return sum
}
