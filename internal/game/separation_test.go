package game

import (
	"math/rand"
	"testing"

	"netdesign/internal/numeric"
)

// TestSeparationOracleMatchesFindViolation drives a SeparationOracle and
// the plain FindViolation scan through the same subsidy trajectories —
// monotone raises, partial decays, and resets, mimicking row-generation
// iterates — and requires bit-identical answers: same player, same path,
// same costs, same nil rounds.
func TestSeparationOracleMatchesFindViolation(t *testing.T) {
	rng := rand.New(rand.NewSource(431))
	for trial := 0; trial < 60; trial++ {
		st := randomGameState(t, rng, 6+rng.Intn(12), 2+rng.Intn(4))
		g := st.Game().G
		o := st.NewSeparationOracle()
		b := ZeroSubsidy(g)
		for round := 0; round < 40; round++ {
			want := st.FindViolation(b)
			got := o.FindViolation(b)
			if (want == nil) != (got == nil) {
				t.Fatalf("trial %d round %d: oracle %+v vs scan %+v", trial, round, got, want)
			}
			if want != nil {
				if got.Player != want.Player || got.Current != want.Current || got.Better != want.Better {
					t.Fatalf("trial %d round %d: oracle %+v vs scan %+v", trial, round, got, want)
				}
				if len(got.Path) != len(want.Path) {
					t.Fatalf("trial %d round %d: path %v vs %v", trial, round, got.Path, want.Path)
				}
				for k := range got.Path {
					if got.Path[k] != want.Path[k] {
						t.Fatalf("trial %d round %d: path %v vs %v", trial, round, got.Path, want.Path)
					}
				}
			}
			// Random walk over subsidies within [0, w], supported on the
			// established edges as the oracle's contract (and the
			// row-generation caller) requires: mostly raises, occasional
			// decreases and zero-outs to exercise both charge directions.
			for _, id := range st.EstablishedEdges() {
				switch rng.Intn(5) {
				case 0:
					b[id] = 0
				case 1, 2:
					w := g.Weight(id)
					b[id] = min(w, b[id]+rng.Float64()*w/4)
				case 3:
					b[id] *= rng.Float64()
				}
			}
		}
	}
}

// TestSeparationOracleResumeOrder forces the large-instance resume-order
// scan on small instances and checks the relaxed contract it promises:
// nil exactly when the exhaustive scan says equilibrium, and otherwise a
// genuine violation — the reported current cost is the player's exact
// cost and the reported deviation is strictly better under numeric.Less.
func TestSeparationOracleResumeOrder(t *testing.T) {
	defer func(v int) { oracleResumeMinPlayers = v }(oracleResumeMinPlayers)
	oracleResumeMinPlayers = 1
	rng := rand.New(rand.NewSource(733))
	for trial := 0; trial < 40; trial++ {
		st := randomGameState(t, rng, 6+rng.Intn(12), 2+rng.Intn(4))
		g := st.Game().G
		o := st.NewSeparationOracle()
		b := ZeroSubsidy(g)
		for round := 0; round < 40; round++ {
			want := st.FindViolation(b)
			got := o.FindViolation(b)
			if (want == nil) != (got == nil) {
				t.Fatalf("trial %d round %d: oracle %+v vs scan %+v", trial, round, got, want)
			}
			if got != nil {
				if cur := st.PlayerCost(got.Player, b); cur != got.Current {
					t.Fatalf("trial %d round %d: reported cost %g, exact %g", trial, round, got.Current, cur)
				}
				if !numeric.Less(got.Better, got.Current) {
					t.Fatalf("trial %d round %d: non-violation reported: %+v", trial, round, got)
				}
				if dc := st.DeviationCost(got.Player, got.Path, b); !numeric.AlmostEqual(dc, got.Better) {
					t.Fatalf("trial %d round %d: path cost %g, reported %g", trial, round, dc, got.Better)
				}
			}
			for _, id := range st.EstablishedEdges() {
				switch rng.Intn(5) {
				case 0:
					b[id] = 0
				case 1, 2:
					w := g.Weight(id)
					b[id] = min(w, b[id]+rng.Float64()*w/4)
				case 3:
					b[id] *= rng.Float64()
				}
			}
		}
	}
}

// TestSeparationOracleSkips confirms the pruning actually engages: on a
// stable subsidy vector, the second query must not rerun every player's
// Dijkstra (observable as identical answers with the drift untouched).
// The gate is forced down because below it the oracle delegates to the
// plain scan and caches nothing.
func TestSeparationOracleSkips(t *testing.T) {
	defer func(v int) { oracleResumeMinPlayers = v }(oracleResumeMinPlayers)
	oracleResumeMinPlayers = 1
	rng := rand.New(rand.NewSource(97))
	st := randomGameState(t, rng, 16, 4)
	o := st.NewSeparationOracle()
	b := ZeroSubsidy(st.Game().G)
	first := o.FindViolation(b)
	again := o.FindViolation(b)
	if (first == nil) != (again == nil) {
		t.Fatalf("repeat query disagrees: %+v vs %+v", first, again)
	}
	seen := 0
	for _, s := range o.seen {
		if s {
			seen++
		}
	}
	if seen == 0 {
		t.Fatal("oracle never cached a best response")
	}
}
