package game

import (
	"errors"
	"math/rand"
	"sync"

	"netdesign/internal/graph"
	"netdesign/internal/numeric"
)

// brScratch is the pooled workspace of the separation oracle: a Dijkstra
// Scratch plus a path-reconstruction buffer. Pooled rather than hung off
// the State so concurrent FindViolation calls on one State stay safe.
type brScratch struct {
	s    graph.Scratch
	path []int
}

var brPool = sync.Pool{New: func() any { return new(brScratch) }}

// bestResponseInto runs player i's best-response Dijkstra (early exit at
// the player's sink) into ws and returns the deviation cost; the path is
// retrievable from ws afterwards.
func (st *State) bestResponseInto(ws *brScratch, i int, b Subsidy) float64 {
	g := st.game.G
	uses := st.uses[i]
	wf := func(id int) float64 {
		den := st.usage[id] + 1
		if uses[id] {
			den--
		}
		return (g.Weight(id) - b.At(id)) / float64(den)
	}
	tm := st.game.Terminals[i]
	ws.s.DijkstraTo(g.Freeze(), tm.S, tm.T, wf)
	return ws.s.Dist[tm.T]
}

// BestResponse returns a minimum-cost deviation path for player i against
// the rest of st, together with its cost. The marginal cost of edge a for
// player i is (w_a − b_a)/(n_a + 1 − n_a^i): this is the separation oracle
// of the paper's LP (1), implemented with Dijkstra (early exit at the
// player's sink, pooled workspace).
func (st *State) BestResponse(i int, b Subsidy) (path []int, cost float64) {
	ws := brPool.Get().(*brScratch)
	defer brPool.Put(ws)
	cost = st.bestResponseInto(ws, i, b)
	t := st.game.Terminals[i].T
	ws.path = ws.s.PathTo(t, ws.path[:0])
	if ws.path == nil {
		return nil, cost
	}
	return append([]int(nil), ws.path...), cost
}

// Violation describes a profitable unilateral deviation.
type Violation struct {
	Player  int
	Path    []int   // the improving path
	Current float64 // player's current cost
	Better  float64 // cost after deviating
}

// Gain returns how much the deviation saves.
func (v *Violation) Gain() float64 { return v.Current - v.Better }

// FindViolation returns a profitable deviation, or nil if st is a Nash
// equilibrium of the game extended with subsidies b.
func (st *State) FindViolation(b Subsidy) *Violation {
	best := st.bestViolation(b, false)
	return best
}

// IsEquilibrium reports whether no player can profitably deviate.
func (st *State) IsEquilibrium(b Subsidy) bool {
	return st.FindViolation(b) == nil
}

// bestViolation scans players in order; if maxGain is true it returns the
// violation with the largest gain, otherwise the first found.
func (st *State) bestViolation(b Subsidy, maxGain bool) *Violation {
	ws := brPool.Get().(*brScratch)
	defer brPool.Put(ws)
	var best *Violation
	for i := range st.Paths {
		cur := st.PlayerCost(i, b)
		cost := st.bestResponseInto(ws, i, b)
		if !numeric.Less(cost, cur) {
			continue
		}
		t := st.game.Terminals[i].T
		ws.path = ws.s.PathTo(t, ws.path[:0])
		if ws.path == nil {
			continue
		}
		v := &Violation{Player: i, Path: append([]int(nil), ws.path...), Current: cur, Better: cost}
		if !maxGain {
			return v
		}
		if best == nil || v.Gain() > best.Gain() {
			best = v
		}
	}
	return best
}

// Order selects the player-scheduling discipline for best-response
// dynamics.
type Order int

// Scheduling disciplines.
const (
	RoundRobin Order = iota // first improving player in index order
	MaxGain                 // player with the largest improvement
	Random                  // random improving player
)

// ErrNoConvergence is returned when dynamics exceed their step budget.
// Fair-cost-sharing games are potential games, so this indicates a
// tolerance pathology, not a theoretical possibility.
var ErrNoConvergence = errors.New("game: best-response dynamics exceeded step budget")

// DynamicsResult records a best-response-dynamics run.
type DynamicsResult struct {
	Final      *State
	Steps      int
	Potentials []float64 // potential after each step (including start)
}

// BestResponseDynamics runs improving best responses from st until no
// player can improve, under the given order (rng may be nil unless
// order == Random). The Rosenthal potential strictly decreases each step,
// which both proves termination and is recorded for analysis.
//
// The walk is incremental: the start state is cloned once, each accepted
// move patches usage counts in place (O(path)), and best responses run
// on the graph's frozen CSR view with a reused Scratch workspace — no
// per-step state rebuild and no per-step allocations beyond the recorded
// potential. st itself is never modified; Final is the mutated clone.
func BestResponseDynamics(st *State, b Subsidy, order Order, rng *rand.Rand, maxSteps int) (*DynamicsResult, error) {
	if maxSteps <= 0 {
		maxSteps = 100000
	}
	cur := st.Clone()
	res := &DynamicsResult{Final: cur, Potentials: []float64{cur.Potential(b)}}
	g := cur.game.G
	c := g.Freeze()
	var s graph.Scratch
	player := 0
	wf := func(id int) float64 {
		den := cur.usage[id] + 1
		if cur.uses[player][id] {
			den--
		}
		return (g.Weight(id) - b.At(id)) / float64(den)
	}
	// improving runs player i's best response; on improvement it returns
	// the gain, leaving the path retrievable from the scratch workspace.
	improving := func(i int) (float64, bool) {
		player = i
		t := cur.game.Terminals[i].T
		s.DijkstraTo(c, cur.game.Terminals[i].S, t, wf)
		cost := s.Dist[t]
		curCost := cur.PlayerCost(i, b)
		if !numeric.Less(cost, curCost) {
			return 0, false
		}
		return curCost - cost, true
	}
	var bestBuf []int
	var cands []int
	for res.Steps < maxSteps {
		move := -1
		switch order {
		case RoundRobin:
			for i := range cur.Paths {
				if _, ok := improving(i); ok {
					move = i
					bestBuf = s.PathTo(cur.game.Terminals[i].T, bestBuf[:0])
					break
				}
			}
		case MaxGain:
			bestGain := 0.0
			for i := range cur.Paths {
				if gain, ok := improving(i); ok && (move == -1 || gain > bestGain) {
					move = i
					bestGain = gain
					bestBuf = s.PathTo(cur.game.Terminals[i].T, bestBuf[:0])
				}
			}
		case Random:
			cands = cands[:0]
			for i := range cur.Paths {
				if _, ok := improving(i); ok {
					cands = append(cands, i)
				}
			}
			if len(cands) > 0 {
				move = cands[rng.Intn(len(cands))]
				improving(move) // recompute the chosen player's response
				bestBuf = s.PathTo(cur.game.Terminals[move].T, bestBuf[:0])
			}
		}
		if move == -1 {
			return res, nil
		}
		cur.applyMove(move, bestBuf)
		res.Steps++
		res.Potentials = append(res.Potentials, cur.Potential(b))
	}
	return res, ErrNoConvergence
}

// BestResponseDynamicsNaive is the original rebuild-per-step
// implementation (Replace → NewState, allocating Dijkstra). It is
// retained as the differential-test oracle for the incremental walk.
func BestResponseDynamicsNaive(st *State, b Subsidy, order Order, rng *rand.Rand, maxSteps int) (*DynamicsResult, error) {
	if maxSteps <= 0 {
		maxSteps = 100000
	}
	res := &DynamicsResult{Final: st, Potentials: []float64{st.Potential(b)}}
	for res.Steps < maxSteps {
		var v *Violation
		switch order {
		case RoundRobin:
			v = res.Final.bestViolation(b, false)
		case MaxGain:
			v = res.Final.bestViolation(b, true)
		case Random:
			var all []*Violation
			for i := range res.Final.Paths {
				cur := res.Final.PlayerCost(i, b)
				path, cost := res.Final.BestResponse(i, b)
				if path != nil && numeric.Less(cost, cur) {
					all = append(all, &Violation{Player: i, Path: path, Current: cur, Better: cost})
				}
			}
			if len(all) > 0 {
				v = all[rng.Intn(len(all))]
			}
		}
		if v == nil {
			return res, nil
		}
		next, err := res.Final.Replace(v.Player, v.Path)
		if err != nil {
			return nil, err
		}
		res.Final = next
		res.Steps++
		res.Potentials = append(res.Potentials, next.Potential(b))
	}
	return res, ErrNoConvergence
}
