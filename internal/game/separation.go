package game

import "netdesign/internal/numeric"

// SeparationOracle answers repeated FindViolation queries against one
// fixed State whose subsidy vector evolves between calls — the shape of
// the row-generation loop, where the strategy profile never changes and
// only b moves. It returns exactly what State.FindViolation would, but
// skips a player's best-response Dijkstra whenever a certified lower
// bound on that player's deviation *gap* already rules the violation out.
//
// The bound. Player i violates iff gap_i(b) < 0 (up to numeric.Less
// tolerance), where gap_i(b) = bc_i(b) − cur_i(b) is the best-response
// cost minus the current cost. For any deviation path p the shared edges
// cancel exactly — an edge a ∈ T_i ∩ p carries the same denominator n_a
// on both sides — so
//
//	cost_p(b) − cur_i(b) = Σ_{a∈p\T_i} (w_a−b_a)/(n_a+1) − Σ_{a∈T_i\p} (w_a−b_a)/n_a.
//
// Moving the subsidies from the snapshot b⁰ (taken at player i's last
// exact Dijkstra) to b therefore changes that difference by at least
//
//	−Σ_{a∉T_i} (b_a−b⁰_a)⁺/(n_a+1) − Σ_{a∈T_i} (b⁰_a−b_a)⁺/n_a
//
// — only subsidy *raises off the player's own path* and subsidy *cuts on
// it* can push the player toward deviating. Minimizing over p gives
// gap_i(b) ≥ gap_i(b⁰) − charge_i, with the charge summed over the
// established edges only (callers keep b supported there, in [0, w_a]).
// This is much tighter than charging the global subsidy drift: the LP
// concentrates its movement on heavily shared edges, which lie *on* most
// players' paths and cancel out of their charges entirely.
//
// The skip test compares the resulting lower bound on bc_i (clamped to
// 0, which is valid since b ≤ w keeps all costs non-negative and keeps
// numeric.Less's relative tolerance from inflating) to the exactly
// computed cur_i with the same numeric.Less the exact scan uses. The
// true best-response cost can only sit at or above the bound, so a
// skipped player is provably one the exact scan would also have passed
// over.
//
// Scan order. Below oracleResumeMinPlayers the oracle delegates to
// State.FindViolation outright — decisions are bit-identical by
// construction, and on instances that small the per-player charge and
// snapshot bookkeeping costs more than the Dijkstras it saves (a
// 40-node Dijkstra runs in a couple of microseconds). At or above the
// threshold the skip bound engages and the scan resumes at the last
// violating player (round-robin): any violated constraint is an
// equally valid cut for the row-generation caller, and resuming avoids
// re-proving the long already-satisfied prefix with a fresh Dijkstra
// per player per round. The nil answer is unchanged either way — it
// always certifies a full pass over every player found no violation.
type SeparationOracle struct {
	st     *State
	ws     brScratch
	estab  []int     // established edges: the support b can move on
	raise  []float64 // 1/(n_a+1) per established edge: off-path raise charge
	cut    []float64 // 1/n_a per established edge: on-path cut charge
	gap    []float64 // last exact gap bc_i − cur_i per player
	seen   []bool
	snap   []float64 // per-player b snapshot over estab, player-major
	cursor int       // resume-order start player (large instances only)
}

// oracleResumeMinPlayers gates the oracle machinery as a whole:
// instances with fewer players fall through to the plain exhaustive
// scan, keeping the exact first-violator-by-index contract that pins
// cut selection — and therefore iteration and pivot counts — on the
// golden experiment tables, and paying zero bookkeeping where the
// Dijkstras are too cheap to be worth pruning. Large instances trade
// that for skip bounds and for not rescanning hundreds of satisfied
// players every round. Package-level so tests can exercise both modes.
var oracleResumeMinPlayers = 64

// NewSeparationOracle returns a pruning separation oracle bound to st.
// The state's strategy profile (paths and usage counts) must not change
// for the oracle's lifetime; the subsidy argument may change freely
// between calls on the established edges but must stay zero elsewhere —
// the row-generation invariant, and the support the drift charge
// covers. Memory is O(players · established edges).
func (st *State) NewSeparationOracle() *SeparationOracle {
	estab := st.EstablishedEdges()
	raise := make([]float64, len(estab))
	cut := make([]float64, len(estab))
	for k, id := range estab {
		d := st.usage[id]
		if d < 1 {
			d = 1
		}
		raise[k] = 1 / float64(d+1)
		cut[k] = 1 / float64(d)
	}
	np := len(st.Paths)
	return &SeparationOracle{
		st:    st,
		estab: estab,
		raise: raise,
		cut:   cut,
		gap:   make([]float64, np),
		seen:  make([]bool, np),
		snap:  make([]float64, np*len(estab)),
	}
}

// FindViolation returns a player with a profitable unilateral deviation
// under subsidies b, or nil at equilibrium. Below the oracle threshold
// it is the first such player in index order — the same contract, and
// the same answer, as State.FindViolation.
func (o *SeparationOracle) FindViolation(b Subsidy) *Violation {
	st := o.st
	np := len(st.Paths)
	if np < oracleResumeMinPlayers {
		return st.FindViolation(b)
	}
	ne := len(o.estab)
	start := o.cursor
	for k := 0; k < np; k++ {
		i := start + k
		if i >= np {
			i -= np
		}
		cur := st.PlayerCost(i, b)
		if o.seen[i] {
			uses := st.uses[i]
			snap := o.snap[i*ne : (i+1)*ne]
			charge := 0.0
			for k, id := range o.estab {
				d := b.At(id) - snap[k]
				if d > 0 {
					if !uses[id] {
						charge += d * o.raise[k]
					}
				} else if d < 0 && uses[id] {
					charge -= d * o.cut[k]
				}
			}
			lb := cur + o.gap[i] - charge
			if lb < 0 {
				lb = 0
			}
			if !numeric.Less(lb, cur) {
				continue
			}
		}
		cost := st.bestResponseInto(&o.ws, i, b)
		o.gap[i], o.seen[i] = cost-cur, true
		snap := o.snap[i*ne : (i+1)*ne]
		for k, id := range o.estab {
			snap[k] = b.At(id)
		}
		if !numeric.Less(cost, cur) {
			continue
		}
		t := st.game.Terminals[i].T
		o.ws.path = o.ws.s.PathTo(t, o.ws.path[:0])
		if o.ws.path == nil {
			continue
		}
		o.cursor = i
		return &Violation{Player: i, Path: append([]int(nil), o.ws.path...), Current: cur, Better: cost}
	}
	return nil
}
