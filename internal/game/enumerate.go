package game

import (
	"errors"
	"math"

	"netdesign/internal/graph"
)

// ErrTooManyStates is returned by exhaustive analyses when the strategy
// space exceeds the caller's limit.
var ErrTooManyStates = errors.New("game: state space limit exceeded")

// Strategies enumerates every simple path for each player, capped at
// maxPerPlayer paths per player (≤ 0 means unlimited).
func (gm *Game) Strategies(maxPerPlayer int) ([][][]int, error) {
	out := make([][][]int, gm.N())
	for i, tm := range gm.Terminals {
		var paths [][]int
		graph.SimplePaths(gm.G, tm.S, tm.T, maxPerPlayer, func(p []int) bool {
			paths = append(paths, p)
			return true
		})
		if len(paths) == 0 {
			return nil, errors.New("game: player has no connecting path")
		}
		if maxPerPlayer > 0 && len(paths) >= maxPerPlayer {
			return nil, ErrTooManyStates
		}
		out[i] = paths
	}
	return out, nil
}

// ForEachState enumerates the full strategy-profile space (the Cartesian
// product of players' simple paths) and calls fn on each state. fn may
// return false to stop. The total number of states visited is returned;
// enumeration aborts with ErrTooManyStates beyond stateLimit (≤ 0 means
// unlimited). This is intentionally brute force: it is the oracle against
// which the fast equilibrium checks are validated, and the engine for
// exact price-of-anarchy/stability on tiny games.
func (gm *Game) ForEachState(stateLimit int, fn func(st *State) bool) (int, error) {
	strat, err := gm.Strategies(0)
	if err != nil {
		return 0, err
	}
	total := 1
	for _, s := range strat {
		if stateLimit > 0 && total > stateLimit {
			return 0, ErrTooManyStates
		}
		total *= len(s)
		if stateLimit > 0 && total > stateLimit {
			return 0, ErrTooManyStates
		}
	}
	choice := make([]int, gm.N())
	count := 0
	for {
		paths := make([][]int, gm.N())
		for i, c := range choice {
			paths[i] = strat[i][c]
		}
		st, err := NewState(gm, paths)
		if err != nil {
			return count, err
		}
		count++
		if !fn(st) {
			return count, nil
		}
		// Advance the mixed-radix counter.
		i := 0
		for ; i < gm.N(); i++ {
			choice[i]++
			if choice[i] < len(strat[i]) {
				break
			}
			choice[i] = 0
		}
		if i == gm.N() {
			return count, nil
		}
	}
}

// Analysis summarizes the exhaustive equilibrium landscape of a game.
type Analysis struct {
	States       int
	Equilibria   int
	OptWeight    float64 // minimum established weight over all states
	BestEqWeight float64 // minimum established weight over equilibria (+Inf if none)
	WorstEq      float64 // maximum established weight over equilibria (-Inf if none)
}

// PoS returns the price of stability (best equilibrium / optimum).
func (a *Analysis) PoS() float64 { return a.BestEqWeight / a.OptWeight }

// PoA returns the price of anarchy (worst equilibrium / optimum).
func (a *Analysis) PoA() float64 { return a.WorstEq / a.OptWeight }

// Analyze exhaustively scans the state space under subsidies b. Pure Nash
// equilibria always exist in these potential games, so Equilibria ≥ 1
// whenever enumeration completes.
func (gm *Game) Analyze(b Subsidy, stateLimit int) (*Analysis, error) {
	a := &Analysis{OptWeight: math.Inf(1), BestEqWeight: math.Inf(1), WorstEq: math.Inf(-1)}
	n, err := gm.ForEachState(stateLimit, func(st *State) bool {
		w := st.EstablishedWeight()
		if w < a.OptWeight {
			a.OptWeight = w
		}
		if st.IsEquilibrium(b) {
			a.Equilibria++
			if w < a.BestEqWeight {
				a.BestEqWeight = w
			}
			if w > a.WorstEq {
				a.WorstEq = w
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	a.States = n
	return a, nil
}
