// Quickstart: build a broadcast game, see why its optimal design is not
// stable, and compute the minimum subsidies that fix it — the library's
// core loop in ~40 lines.
package main

import (
	"fmt"
	"log"

	"netdesign/internal/core"
)

func main() {
	// A ring of six sites around a datacenter (node 0). Every link costs
	// 1; players at nodes 1..6 each need a path to node 0 and split link
	// costs evenly with whoever shares them.
	g := core.NewGraph(7)
	for i := 0; i < 6; i++ {
		g.AddEdge(i, i+1, 1)
	}
	g.AddEdge(6, 0, 1)

	bg, err := core.NewBroadcastGame(g, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Suppose regulation mandates the specific backbone 0-1-2-3-4-5-6
	// (the ring minus the closing link). It is a minimum spanning tree —
	// socially optimal — but the player at node 6 pays the harmonic share
	// H_6 ≈ 2.45 and would rather build the direct link for 1.
	target := []int{0, 1, 2, 3, 4, 5}
	st, err := core.NewTreeState(bg, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backbone weight: %.4g\n", st.Weight())
	fmt.Printf("stable without subsidies? %v\n", core.IsEquilibrium(st, nil))

	// STABLE NETWORK ENFORCEMENT: the cheapest subsidies making the
	// backbone a Nash equilibrium (the paper's LP (3)).
	opt, err := core.MinimumSubsidies(st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimum subsidies: %.4f (%.1f%% of the backbone cost)\n",
		opt.Cost, 100*opt.Cost/st.Weight())

	// Theorem 6's universal guarantee: wgt(T)/e always suffices.
	_, cert, err := core.EnforceWithinOneOverE(st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem-6 construction: %.4f (exactly wgt(T)/e)\n", cert.Total)

	// All-or-nothing policy (subsidize whole links or none): exact
	// optimum by branch-and-bound — strictly costlier, per Section 5.
	aon, err := core.MinimumAONSubsidies(st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all-or-nothing optimum: %.4f\n", aon.Cost)

	// Always audit: verification is independent of the solvers.
	if err := core.Verify(st, opt.Subsidy); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: the subsidized backbone is a Nash equilibrium")
}
