// Metro: a realistic STABLE NETWORK DESIGN scenario. A transit authority
// must pick which links of a proposed metro map to build so that the
// district operators (who share link costs evenly) have no incentive to
// defect to private shuttle links — and it has a limited subsidy budget
// to make the efficient design stick.
package main

import (
	"errors"
	"fmt"
	"log"
	"math"

	"netdesign/internal/broadcast"
	"netdesign/internal/core"
	"netdesign/internal/snd"
	"netdesign/internal/sne"
)

func main() {
	// 10 districts around a central station (node 0). Trunk links are
	// cheap per-user but long; shuttle links are direct but private.
	g := core.NewGraph(11)
	type link struct {
		u, v int
		w    float64
		name string
	}
	links := []link{
		{0, 1, 2.0, "trunk A1"}, {1, 2, 1.5, "trunk A2"}, {2, 3, 1.5, "trunk A3"},
		{0, 4, 2.0, "trunk B1"}, {4, 5, 1.5, "trunk B2"}, {5, 6, 1.5, "trunk B3"},
		{0, 7, 2.5, "trunk C1"}, {7, 8, 1.2, "trunk C2"},
		{8, 9, 1.2, "trunk C3"}, {9, 10, 1.2, "trunk C4"},
		// Private shuttle options (tempting defections).
		{0, 3, 3.2, "shuttle 3"}, {0, 6, 3.4, "shuttle 6"},
		{0, 10, 3.0, "shuttle 10"}, {3, 6, 2.2, "crosstown 3-6"},
		{6, 10, 2.6, "crosstown 6-10"}, {2, 5, 1.9, "crosstown 2-5"},
	}
	for _, l := range links {
		g.AddEdge(l.u, l.v, l.w)
	}
	bg, err := core.NewBroadcastGame(g, 0)
	if err != nil {
		log.Fatal(err)
	}

	mst, err := core.MinimumSpanningTree(bg)
	if err != nil {
		log.Fatal(err)
	}
	st, err := core.NewTreeState(bg, mst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("efficient metro plan: %d links, total cost %.2f\n", len(mst), st.Weight())
	if v := st.FindViolation(nil); v != nil {
		fmt.Printf("unstable: district %d would defect via %s (%.2f → %.2f)\n",
			v.Node, links[v.ViaEdge].name, v.Current, v.Better)
	}

	// How much public money makes the efficient plan self-enforcing?
	opt, err := core.MinimumSubsidies(st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimum subsidy bill: %.3f (%.1f%% of plan cost; Theorem-6 ceiling is %.1f%%)\n",
		opt.Cost, 100*opt.Cost/st.Weight(), 100/math.E)
	for _, id := range st.Tree.EdgeIDs {
		if opt.Subsidy.At(id) > 1e-9 {
			fmt.Printf("  subsidize %-12s %.3f of %.2f\n", links[id].name, opt.Subsidy.At(id), g.Weight(id))
		}
	}

	// Sensitivity report: which defection threats actually cost money?
	// LP shadow prices identify the binding constraints.
	binding, _, err := sne.BindingDeviations(st)
	if err != nil {
		log.Fatal(err)
	}
	for _, bd := range binding {
		fmt.Printf("  binding threat: district %d via %-14s (shadow price %.3f)\n",
			bd.Node, links[bd.ViaEdge].name, bd.ShadowPrice)
	}

	// Budgeted design: what if the treasury caps subsidies below the LP
	// bill? SND searches heavier-but-cheaper-to-stabilize networks.
	for _, budget := range []float64{opt.Cost, opt.Cost / 2, 0} {
		res, err := snd.SolveExact(bg, budget, 2_000_000)
		if errors.Is(err, snd.ErrBudgetInfeasible) {
			fmt.Printf("budget %.3f: no stable design exists\n", budget)
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("budget %.3f: best stable design costs %.2f using %.3f in subsidies\n",
			budget, res.Weight, res.SubsidyCost)
	}

	// Exact price of stability of this map, by full enumeration.
	a, err := broadcast.AnalyzeTrees(bg, nil, 2_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spanning trees: %d, equilibria: %d, PoS = %.4f\n", a.Trees, a.Equilibria, a.PoS())
}
