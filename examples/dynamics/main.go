// Dynamics: the game-theoretic machinery under the hood. Players start
// from selfish shortest paths, improve unilaterally until a Nash
// equilibrium emerges (Rosenthal's potential descending at every step),
// and we compare what selfishness converged to against the social
// optimum — then stabilize the optimum with subsidies instead.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"netdesign/internal/broadcast"
	"netdesign/internal/core"
	"netdesign/internal/game"
	"netdesign/internal/graph"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomConnected(rng, 9, 0.35, 0.5, 3)
	bg, err := core.NewBroadcastGame(g, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Expand to the general engine: one explicit player per node.
	mst, err := core.MinimumSpanningTree(bg)
	if err != nil {
		log.Fatal(err)
	}
	st, err := core.NewTreeState(bg, mst)
	if err != nil {
		log.Fatal(err)
	}
	gm, _, err := st.ToGeneral(100)
	if err != nil {
		log.Fatal(err)
	}

	// Start from independently chosen (perturbed) shortest paths.
	paths := make([][]int, gm.N())
	for i, tm := range gm.Terminals {
		sp := graph.Dijkstra(g, tm.S, func(id int) float64 { return g.Weight(id) * (1 + rng.Float64()) })
		paths[i] = sp.PathTo(tm.T)
	}
	start, err := game.NewState(gm, paths)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("start: social cost %.3f, potential %.3f\n", start.EstablishedWeight(), start.Potential(nil))

	res, err := game.BestResponseDynamics(start, nil, game.RoundRobin, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best-response dynamics converged in %d steps\n", res.Steps)
	for i, phi := range res.Potentials {
		fmt.Printf("  step %2d: potential %.4f\n", i, phi)
	}
	final := res.Final
	fmt.Printf("equilibrium social cost: %.3f (optimum %.3f, ratio %.3f)\n",
		final.EstablishedWeight(), g.WeightOf(mst), final.EstablishedWeight()/g.WeightOf(mst))

	// The designer's alternative: keep the optimum and pay subsidies.
	opt, err := core.MinimumSubsidies(st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stabilizing the optimum instead costs %.3f in subsidies (%.1f%% of it)\n",
		opt.Cost, 100*opt.Cost/st.Weight())

	// Exact equilibrium landscape for the record.
	a, err := broadcast.AnalyzeTrees(bg, nil, 500000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("landscape: %d trees, %d equilibria, PoS %.4f, PoA (over trees) %.4f\n",
		a.Trees, a.Equilibria, a.PoS(), a.WorstEq/a.OptWeight)
}
