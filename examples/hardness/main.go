// Hardness: a guided tour of the Theorem-3 reduction. We take two BIN
// PACKING instances — one solvable, one not — build the paper's Figure-2
// graph for each, and watch the equilibrium structure mirror the packing
// structure exactly: the network designer's question "is there an
// efficient stable design?" literally *is* bin packing.
package main

import (
	"fmt"
	"log"

	"netdesign/internal/gadgets"
	"netdesign/internal/reductions"
)

func main() {
	demo("solvable", reductions.BinPacking{
		Sizes: []int{6, 2, 4, 4, 2, 6}, Bins: 3, Capacity: 8,
	})
	demo("unsolvable", reductions.BinPacking{
		Sizes: []int{8, 8, 8}, Bins: 2, Capacity: 12,
	})
}

func demo(tag string, in reductions.BinPacking) {
	fmt.Printf("=== %s instance: sizes %v into %d bins of %d ===\n", tag, in.Sizes, in.Bins, in.Capacity)
	assign, ok := in.SolveExact()
	fmt.Printf("exact packing solver: solvable = %v\n", ok)
	if ok {
		fmt.Printf("  packing: %v\n", assign)
	}

	bp, err := gadgets.BuildBinPack(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduction graph: %d nodes, %d edges (bypass length ℓ = %d, cross weight %.4f)\n",
		bp.G.N(), bp.G.M(), bp.Ell, bp.CrossW)
	fmt.Printf("every MST has weight K = %.4f and assigns each item-star to one bin connector\n", bp.K)

	witness, hasEq := bp.HasEquilibriumMST()
	fmt.Printf("equilibrium MST exists: %v (Theorem 3 predicts %v)\n", hasEq, ok)
	if hasEq {
		fmt.Printf("  witness assignment: %v with bin loads %v\n", witness, bp.BinLoads(witness))
		st, err := bp.StateForAssignment(witness)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  verified equilibrium: %v\n", st.IsEquilibrium(nil))
	} else {
		// Show *why* every assignment fails: some bin is underfull and
		// its connector player bolts for the bypass edge (Lemma 4).
		shown := 0
		bp.ForEachAssignment(func(a []int) bool {
			st, err := bp.StateForAssignment(a)
			if err != nil {
				log.Fatal(err)
			}
			if v := st.FindViolation(nil); v != nil && shown < 3 {
				fmt.Printf("  assignment %v (loads %v): node %d deviates, %.4f → %.4f\n",
					a, bp.BinLoads(a), v.Node, v.Current, v.Better)
				shown++
			}
			return shown < 3
		})
	}
	fmt.Println()
}
