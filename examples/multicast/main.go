// Multicast: beyond broadcast games. A content provider must connect a
// handful of subscriber sites (not every node) to its origin server —
// the efficient design is a Steiner tree, computed exactly with
// Dreyfus–Wagner — and then make that design stable against defections
// with minimum subsidies. The example ends with the regime the paper's
// Section 6 flags as open: sparse terminals on a ring need *more* than
// the broadcast 1/e guarantee.
package main

import (
	"fmt"
	"log"
	"math"

	"netdesign/internal/graph"
	"netdesign/internal/multicast"
	"netdesign/internal/sne"
)

func main() {
	// A 12-node backbone; subscribers at 3, 6, 9; origin at 0.
	g := graph.New(12)
	type link struct {
		u, v int
		w    float64
	}
	for _, l := range []link{
		{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}, {4, 5, 1}, {5, 6, 1},
		{6, 7, 1}, {7, 8, 1}, {8, 9, 1}, {9, 10, 1}, {10, 11, 1}, {11, 0, 1},
		{1, 7, 2.5}, {2, 10, 2.2}, // chords
	} {
		g.AddEdge(l.u, l.v, l.w)
	}
	mg, err := multicast.NewGame(g, 0, []int{3, 6, 9})
	if err != nil {
		log.Fatal(err)
	}

	design, w, err := mg.OptimalDesign()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Steiner-optimal design: %d links, weight %.3f (Dreyfus–Wagner)\n", len(design), w)

	res, st, err := mg.MinSubsidies(design)
	if err != nil {
		log.Fatal(err)
	}
	if err := sne.VerifyGeneral(st, res.Subsidy); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimum subsidies: %.4f (%.1f%% of the design; %d separation rounds)\n",
		res.Cost, 100*res.Cost/w, res.Iterations)

	// The open regime: players on every second ring node. The broadcast
	// guarantee (≤ 1/e of the design) fails here.
	n := 16
	ring := graph.Cycle(n, 1)
	var terms []int
	for v := 2; v <= n; v += 2 {
		terms = append(terms, v)
	}
	mg2, err := multicast.NewGame(ring, 0, terms)
	if err != nil {
		log.Fatal(err)
	}
	path := make([]int, n)
	for i := range path {
		path[i] = i
	}
	res2, st2, err := mg2.MinSubsidies(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := sne.VerifyGeneral(st2, res2.Subsidy); err != nil {
		log.Fatal(err)
	}
	frac := res2.Cost / float64(n)
	fmt.Printf("\nsparse-terminal ring (n=%d, %d players): fraction %.4f of the design\n",
		n, len(terms), frac)
	fmt.Printf("broadcast ceiling 1/e = %.4f — exceeded: %v (Theorem 6 is broadcast-only)\n",
		1/math.E, frac > 1/math.E)
}
