package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDiffFlagsRegressions(t *testing.T) {
	old := []record{
		{Name: "BenchmarkA", NsOp: 100},
		{Name: "BenchmarkB", NsOp: 200},
		{Name: "BenchmarkGone", NsOp: 5},
	}
	cur := []record{
		{Name: "BenchmarkA", NsOp: 115}, // +15% > 10% threshold
		{Name: "BenchmarkB", NsOp: 190}, // improvement
		{Name: "BenchmarkNew", NsOp: 7},
	}
	ds, onlyOld, onlyNew := diff(old, cur, 0.10)
	if len(ds) != 2 {
		t.Fatalf("got %d shared deltas, want 2", len(ds))
	}
	// Sorted by ratio descending: the regression first.
	if ds[0].name != "BenchmarkA" || !ds[0].regressed {
		t.Fatalf("regression not flagged first: %+v", ds)
	}
	if ds[1].name != "BenchmarkB" || ds[1].regressed {
		t.Fatalf("improvement misflagged: %+v", ds[1])
	}
	if len(onlyOld) != 1 || onlyOld[0] != "BenchmarkGone" {
		t.Fatalf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "BenchmarkNew" {
		t.Fatalf("onlyNew = %v", onlyNew)
	}
}

func TestDiffWithinThreshold(t *testing.T) {
	old := []record{{Name: "BenchmarkA", NsOp: 100}}
	cur := []record{{Name: "BenchmarkA", NsOp: 109}}
	ds, _, _ := diff(old, cur, 0.10)
	if ds[0].regressed {
		t.Fatalf("+9%% flagged at a 10%% threshold: %+v", ds[0])
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	os.WriteFile(oldPath, []byte(`[{"name":"BenchmarkX","ns_op":50,"bytes_op":8,"allocs_op":1}]`), 0o644)
	os.WriteFile(newPath, []byte(`[{"name":"BenchmarkX","ns_op":80,"bytes_op":8,"allocs_op":1}]`), 0o644)
	var sb strings.Builder
	regressions, err := run(&sb, oldPath, newPath, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1", regressions)
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Fatalf("output missing flag:\n%s", sb.String())
	}
}
