// Command benchdiff compares two BENCH_*.json snapshots (as written by
// scripts/bench.sh) and prints per-benchmark deltas, flagging ns/op
// regressions beyond a threshold.
//
// Usage:
//
//	go run ./scripts/benchdiff [-threshold 0.10] [-strict] OLD.json NEW.json
//
// Output is one line per benchmark present in both files (plus summary
// lines for benchmarks only one side has). By default the exit code is
// always 0 — CI wires this into the bench-smoke job as a *non-blocking*
// regression warning, because 1-iteration smoke numbers are noisy;
// -strict exits 1 when any flagged regression survives, for local runs
// with real -benchtime budgets.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

type record struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	BytesOp  float64 `json:"bytes_op"`
	AllocsOp float64 `json:"allocs_op"`
}

type delta struct {
	name      string
	oldNs     float64
	newNs     float64
	ratio     float64 // new/old
	regressed bool
}

// diff compares two snapshots; threshold is the fractional ns/op growth
// (e.g. 0.10 = +10%) beyond which a benchmark counts as regressed.
func diff(old, new []record, threshold float64) (ds []delta, onlyOld, onlyNew []string) {
	om := map[string]record{}
	for _, r := range old {
		om[r.Name] = r
	}
	nm := map[string]record{}
	for _, r := range new {
		nm[r.Name] = r
	}
	for name, o := range om {
		n, ok := nm[name]
		if !ok {
			onlyOld = append(onlyOld, name)
			continue
		}
		d := delta{name: name, oldNs: o.NsOp, newNs: n.NsOp}
		if o.NsOp > 0 {
			d.ratio = n.NsOp / o.NsOp
			d.regressed = d.ratio > 1+threshold
		}
		ds = append(ds, d)
	}
	for name := range nm {
		if _, ok := om[name]; !ok {
			onlyNew = append(onlyNew, name)
		}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].ratio > ds[j].ratio })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return ds, onlyOld, onlyNew
}

func load(path string) ([]record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []record
	if err := json.NewDecoder(f).Decode(&recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

func run(w io.Writer, oldPath, newPath string, threshold float64) (regressions int, err error) {
	old, err := load(oldPath)
	if err != nil {
		return 0, err
	}
	cur, err := load(newPath)
	if err != nil {
		return 0, err
	}
	ds, onlyOld, onlyNew := diff(old, cur, threshold)
	fmt.Fprintf(w, "%-44s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, d := range ds {
		flag := ""
		if d.regressed {
			flag = "  << REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-44s %14.1f %14.1f %+7.1f%%%s\n",
			d.name, d.oldNs, d.newNs, (d.ratio-1)*100, flag)
	}
	for _, name := range onlyOld {
		fmt.Fprintf(w, "%-44s only in %s\n", name, oldPath)
	}
	for _, name := range onlyNew {
		fmt.Fprintf(w, "%-44s only in %s\n", name, newPath)
	}
	if regressions > 0 {
		fmt.Fprintf(w, "\n%d benchmark(s) regressed more than %.0f%% ns/op\n", regressions, threshold*100)
	}
	return regressions, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.10, "fractional ns/op growth flagged as a regression")
	strict := flag.Bool("strict", false, "exit 1 when regressions are flagged")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.10] [-strict] OLD.json NEW.json")
		os.Exit(2)
	}
	regressions, err := run(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *strict && regressions > 0 {
		os.Exit(1)
	}
}
