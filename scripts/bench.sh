#!/usr/bin/env bash
# bench.sh — snapshot the quick benchmark suite for cross-PR comparison.
#
# Runs the substrate micro-benchmarks (plus anything matching $BENCH_PATTERN)
# and writes BENCH_<date>.json in the repo root: an array of
# {name, ns_op, bytes_op, allocs_op} records, newest file per day.
#
# Usage:
#   scripts/bench.sh                    # default quick substrate suite
#   BENCH_PATTERN='.' scripts/bench.sh  # everything (slow)
#   BENCH_TIME=2s scripts/bench.sh      # longer per-benchmark budget
set -euo pipefail

cd "$(dirname "$0")/.."

PATTERN="${BENCH_PATTERN:-Dijkstra|MSTKruskal|MSTPrim|EquilibriumCheck|LCA400|Theorem6Enforce|BroadcastLP|WaterFill|SwapUpdate|SwapRebuild|SwapEval|BestResponse|SwapDynamics|SteinerTree|AnalyzeTrees|Sweep|WeightedPNE|RowGen|WilsonUST|Simplex|LPResolve|LPCold|LPSparse|LPDense|ServeSNE|ServeLoad}"
TIME="${BENCH_TIME:-1s}"
OUT="${BENCH_OUT:-BENCH_$(date +%Y-%m-%d).json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# The LP solver micro-benchmarks (Simplex*/LPResolve*/LPCold*) live in
# internal/lp; everything else is in the root harness package.
echo "running: go test -run=NONE -bench='${PATTERN}' -benchtime=${TIME} -benchmem . ./internal/lp" >&2
go test -run=NONE -bench="${PATTERN}" -benchtime="${TIME}" -benchmem . ./internal/lp | tee "$RAW" >&2

# The serve load benchmarks report custom req/s and p99-ms metrics
# (loadgen throughput and tail latency); they ride along as extra JSON
# fields that benchdiff ignores but humans can diff across PRs.
awk '
  /^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    ns = ""; bytes = "0"; allocs = "0"; rps = ""; p99 = ""
    for (i = 2; i <= NF; i++) {
      if ($(i+1) == "ns/op")     ns = $i
      if ($(i+1) == "B/op")      bytes = $i
      if ($(i+1) == "allocs/op") allocs = $i
      if ($(i+1) == "req/s")     rps = $i
      if ($(i+1) == "p99-ms")    p99 = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"ns_op\": %s, \"bytes_op\": %s, \"allocs_op\": %s", name, ns, bytes, allocs
    if (rps != "") printf ", \"rps\": %s", rps
    if (p99 != "") printf ", \"p99_ms\": %s", p99
    printf "}"
  }
  BEGIN { printf "[\n" }
  END   { printf "\n]\n" }
' "$RAW" > "$OUT"

echo "wrote $OUT" >&2
