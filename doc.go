// Package netdesign reproduces "Enforcing efficient equilibria in network
// design games via subsidies" (Augustine, Caragiannis, Fanelli, Kalaitzis;
// SPAA 2012) as a complete Go library.
//
// Start with internal/core for the public API (compute minimum subsidies,
// enforce trees within the 1/e bound, design budgeted networks, verify
// equilibria), DESIGN.md for the system inventory and per-experiment
// index, and EXPERIMENTS.md for the measured reproduction of every
// theorem and figure. The top-level bench_test.go regenerates each paper
// artifact under `go test -bench=.`; `go run ./cmd/experiments` prints
// the full table suite.
//
// For interactive or service use, cmd/sned runs the solvers as a
// long-lived HTTP/JSON daemon:
//
//	go run ./cmd/sned -addr :8533
//	curl -d '{"instance": "nodes 3\nedge 0 1 1\nedge 1 2 1\nedge 2 0 1\nroot 0\n"}' \
//	    http://localhost:8533/v1/sne
//
// POST /v1/check, /v1/sne, /v1/snd and /v1/pos accept instances in the
// CLI text format; GET /healthz and /metrics cover operations. Responses
// are bit-identical to the sne/snd batch CLIs, and streams of nearby
// instances are served warm through a fingerprint-keyed basis cache
// (DESIGN.md §9).
package netdesign
