// Package netdesign reproduces "Enforcing efficient equilibria in network
// design games via subsidies" (Augustine, Caragiannis, Fanelli, Kalaitzis;
// SPAA 2012) as a complete Go library.
//
// Start with internal/core for the public API (compute minimum subsidies,
// enforce trees within the 1/e bound, design budgeted networks, verify
// equilibria), DESIGN.md for the system inventory and per-experiment
// index, and EXPERIMENTS.md for the measured reproduction of every
// theorem and figure. The top-level bench_test.go regenerates each paper
// artifact under `go test -bench=.`; `go run ./cmd/experiments` prints
// the full table suite.
package netdesign
